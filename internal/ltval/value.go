// Package ltval defines LittleTable's value model: the six column types the
// paper lists in §3.5 (32- and 64-bit integers, double-precision floats,
// timestamps, variable-length strings, and blobs), together with ordering,
// and a compact binary encoding used by blocks and the wire protocol.
//
// LittleTable does not support NULL (§3.5); applications that need a
// sentinel use an in-band value such as -1.
package ltval

import (
	"fmt"
	"math"
	"strconv"
)

// Type identifies a column type.
type Type uint8

// The column types supported by LittleTable (§3.5).
const (
	Invalid Type = iota
	Int32
	Int64
	Double
	Timestamp // microseconds since the Unix epoch
	String
	Blob
)

var typeNames = [...]string{
	Invalid:   "invalid",
	Int32:     "int32",
	Int64:     "int64",
	Double:    "double",
	Timestamp: "timestamp",
	String:    "string",
	Blob:      "blob",
}

// String returns the SQL-ish name of the type.
func (t Type) String() string {
	if int(t) < len(typeNames) {
		return typeNames[t]
	}
	return fmt.Sprintf("type(%d)", uint8(t))
}

// ParseType converts a type name back to a Type.
func ParseType(s string) (Type, error) {
	for t, name := range typeNames {
		if t != 0 && s == name {
			return Type(t), nil
		}
	}
	return Invalid, fmt.Errorf("ltval: unknown type %q", s)
}

// Valid reports whether t is one of the defined column types.
func (t Type) Valid() bool { return t >= Int32 && t <= Blob }

// Fixed reports whether values of this type have a fixed encoded size.
func (t Type) Fixed() bool { return t != String && t != Blob }

// Value is a single cell. Exactly one of the payload fields is meaningful,
// selected by Type: Int holds Int32, Int64, and Timestamp values; Float
// holds Double values; Bytes holds String and Blob values.
type Value struct {
	Type  Type
	Int   int64
	Float float64
	Bytes []byte
}

// NewInt32 returns an Int32 value.
func NewInt32(v int32) Value { return Value{Type: Int32, Int: int64(v)} }

// NewInt64 returns an Int64 value.
func NewInt64(v int64) Value { return Value{Type: Int64, Int: v} }

// NewDouble returns a Double value.
func NewDouble(v float64) Value { return Value{Type: Double, Float: v} }

// NewTimestamp returns a Timestamp value from microseconds since the epoch.
func NewTimestamp(us int64) Value { return Value{Type: Timestamp, Int: us} }

// NewString returns a String value.
func NewString(s string) Value { return Value{Type: String, Bytes: []byte(s)} }

// NewBlob returns a Blob value. The slice is retained, not copied.
func NewBlob(b []byte) Value { return Value{Type: Blob, Bytes: b} }

// Zero returns the zero value for a type, used when a schema gains a column
// and old rows must be filled with the column default (§3.5).
func Zero(t Type) Value {
	switch t {
	case Int32, Int64, Timestamp:
		return Value{Type: t}
	case Double:
		return Value{Type: Double}
	case String, Blob:
		return Value{Type: t, Bytes: nil}
	default:
		return Value{}
	}
}

// IsZero reports whether v is the zero value of its type.
func (v Value) IsZero() bool {
	switch v.Type {
	case Int32, Int64, Timestamp:
		return v.Int == 0
	case Double:
		return v.Float == 0
	case String, Blob:
		return len(v.Bytes) == 0
	default:
		return true
	}
}

// Widen converts an Int32 value to Int64, used when reading rows written
// under a schema whose column precision was later increased (§3.5).
func (v Value) Widen() Value {
	if v.Type == Int32 {
		return Value{Type: Int64, Int: v.Int}
	}
	return v
}

// Compare orders two values of the same type: -1 if v < w, 0 if equal,
// +1 if v > w. Values of different types are ordered by type tag so that
// the total order is still well-defined (this only matters transiently
// during schema changes).
func (v Value) Compare(w Value) int {
	if v.Type != w.Type {
		// Int32 vs Int64 compare numerically so widening is order-preserving.
		if isInt(v.Type) && isInt(w.Type) {
			return cmpInt64(v.Int, w.Int)
		}
		return cmpInt64(int64(v.Type), int64(w.Type))
	}
	switch v.Type {
	case Int32, Int64, Timestamp:
		return cmpInt64(v.Int, w.Int)
	case Double:
		switch {
		case v.Float < w.Float:
			return -1
		case v.Float > w.Float:
			return 1
		default:
			return 0
		}
	case String, Blob:
		return cmpBytes(v.Bytes, w.Bytes)
	default:
		return 0
	}
}

// Equal reports whether v and w are the same value.
func (v Value) Equal(w Value) bool { return v.Compare(w) == 0 }

func isInt(t Type) bool { return t == Int32 || t == Int64 }

func cmpInt64(a, b int64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

func cmpBytes(a, b []byte) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			if a[i] < b[i] {
				return -1
			}
			return 1
		}
	}
	return cmpInt64(int64(len(a)), int64(len(b)))
}

// String renders the value for logs and the SQL shell.
func (v Value) String() string {
	switch v.Type {
	case Int32, Int64:
		return strconv.FormatInt(v.Int, 10)
	case Timestamp:
		return fmt.Sprintf("@%d", v.Int)
	case Double:
		return strconv.FormatFloat(v.Float, 'g', -1, 64)
	case String:
		return strconv.Quote(string(v.Bytes))
	case Blob:
		return fmt.Sprintf("x'%x'", v.Bytes)
	default:
		return "<invalid>"
	}
}

// EncodedSize returns the number of bytes Append will write for v.
func (v Value) EncodedSize() int {
	switch v.Type {
	case Int32:
		return 4
	case Int64, Timestamp:
		return 8
	case Double:
		return 8
	case String, Blob:
		return uvarintLen(uint64(len(v.Bytes))) + len(v.Bytes)
	default:
		return 0
	}
}

// Append appends the binary encoding of v to dst and returns the extended
// slice. The encoding is typeless: the schema supplies types on decode.
// Integers are little-endian fixed width; strings and blobs are
// uvarint-length-prefixed.
func (v Value) Append(dst []byte) []byte {
	switch v.Type {
	case Int32:
		u := uint32(v.Int)
		return append(dst, byte(u), byte(u>>8), byte(u>>16), byte(u>>24))
	case Int64, Timestamp:
		u := uint64(v.Int)
		return appendU64(dst, u)
	case Double:
		return appendU64(dst, math.Float64bits(v.Float))
	case String, Blob:
		dst = appendUvarint(dst, uint64(len(v.Bytes)))
		return append(dst, v.Bytes...)
	default:
		return dst
	}
}

// Decode reads one value of type t from b, returning the value and the
// number of bytes consumed. Byte-slice values alias b; callers that retain
// them across buffer reuse must copy.
func Decode(t Type, b []byte) (Value, int, error) {
	switch t {
	case Int32:
		if len(b) < 4 {
			return Value{}, 0, errShort(t)
		}
		u := uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
		return Value{Type: Int32, Int: int64(int32(u))}, 4, nil
	case Int64, Timestamp:
		u, err := readU64(b)
		if err != nil {
			return Value{}, 0, err
		}
		return Value{Type: t, Int: int64(u)}, 8, nil
	case Double:
		u, err := readU64(b)
		if err != nil {
			return Value{}, 0, err
		}
		return Value{Type: Double, Float: math.Float64frombits(u)}, 8, nil
	case String, Blob:
		n, w := uvarint(b)
		if w <= 0 || uint64(len(b)-w) < n {
			return Value{}, 0, errShort(t)
		}
		return Value{Type: t, Bytes: b[w : w+int(n)]}, w + int(n), nil
	default:
		return Value{}, 0, fmt.Errorf("ltval: decode of invalid type %v", t)
	}
}

func errShort(t Type) error { return fmt.Errorf("ltval: short buffer decoding %v", t) }

func appendU64(dst []byte, u uint64) []byte {
	return append(dst,
		byte(u), byte(u>>8), byte(u>>16), byte(u>>24),
		byte(u>>32), byte(u>>40), byte(u>>48), byte(u>>56))
}

func readU64(b []byte) (uint64, error) {
	if len(b) < 8 {
		return 0, fmt.Errorf("ltval: short buffer decoding u64")
	}
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56, nil
}

func appendUvarint(dst []byte, u uint64) []byte {
	for u >= 0x80 {
		dst = append(dst, byte(u)|0x80)
		u >>= 7
	}
	return append(dst, byte(u))
}

func uvarintLen(u uint64) int {
	n := 1
	for u >= 0x80 {
		u >>= 7
		n++
	}
	return n
}

func uvarint(b []byte) (uint64, int) {
	var u uint64
	var shift uint
	for i, c := range b {
		if i >= 10 {
			return 0, -1
		}
		if c < 0x80 {
			return u | uint64(c)<<shift, i + 1
		}
		u |= uint64(c&0x7f) << shift
		shift += 7
	}
	return 0, 0
}
