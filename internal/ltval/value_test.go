package ltval

import (
	"math"
	"testing"
	"testing/quick"
)

func TestTypeRoundTrip(t *testing.T) {
	for _, typ := range []Type{Int32, Int64, Double, Timestamp, String, Blob} {
		got, err := ParseType(typ.String())
		if err != nil {
			t.Fatalf("ParseType(%q): %v", typ.String(), err)
		}
		if got != typ {
			t.Errorf("ParseType(%q) = %v, want %v", typ.String(), got, typ)
		}
	}
}

func TestParseTypeUnknown(t *testing.T) {
	if _, err := ParseType("varchar"); err == nil {
		t.Error("ParseType(varchar) succeeded, want error")
	}
	if _, err := ParseType("invalid"); err == nil {
		t.Error("ParseType(invalid) succeeded, want error")
	}
}

func TestTypeValid(t *testing.T) {
	if Invalid.Valid() {
		t.Error("Invalid.Valid() = true")
	}
	if !Int32.Valid() || !Blob.Valid() {
		t.Error("range endpoints not valid")
	}
	if Type(200).Valid() {
		t.Error("Type(200).Valid() = true")
	}
}

func TestConstructors(t *testing.T) {
	cases := []struct {
		v    Value
		typ  Type
		repr string
	}{
		{NewInt32(-7), Int32, "-7"},
		{NewInt64(1 << 40), Int64, "1099511627776"},
		{NewDouble(2.5), Double, "2.5"},
		{NewTimestamp(123456), Timestamp, "@123456"},
		{NewString("hi"), String, `"hi"`},
		{NewBlob([]byte{0xde, 0xad}), Blob, "x'dead'"},
	}
	for _, c := range cases {
		if c.v.Type != c.typ {
			t.Errorf("type = %v, want %v", c.v.Type, c.typ)
		}
		if got := c.v.String(); got != c.repr {
			t.Errorf("String() = %q, want %q", got, c.repr)
		}
	}
}

func TestZeroAndIsZero(t *testing.T) {
	for _, typ := range []Type{Int32, Int64, Double, Timestamp, String, Blob} {
		z := Zero(typ)
		if z.Type != typ {
			t.Errorf("Zero(%v).Type = %v", typ, z.Type)
		}
		if !z.IsZero() {
			t.Errorf("Zero(%v).IsZero() = false", typ)
		}
	}
	if NewInt32(1).IsZero() {
		t.Error("NewInt32(1).IsZero() = true")
	}
	if NewString("x").IsZero() {
		t.Error("NewString(x).IsZero() = true")
	}
}

func TestWiden(t *testing.T) {
	v := NewInt32(-5).Widen()
	if v.Type != Int64 || v.Int != -5 {
		t.Errorf("Widen = %+v, want int64 -5", v)
	}
	s := NewString("a")
	if got := s.Widen(); got.Type != String {
		t.Errorf("Widen on string changed type to %v", got.Type)
	}
}

func TestCompare(t *testing.T) {
	cases := []struct {
		a, b Value
		want int
	}{
		{NewInt32(1), NewInt32(2), -1},
		{NewInt32(2), NewInt32(2), 0},
		{NewInt32(3), NewInt32(2), 1},
		{NewInt64(-1), NewInt64(1), -1},
		{NewDouble(1.5), NewDouble(2.5), -1},
		{NewDouble(2.5), NewDouble(2.5), 0},
		{NewTimestamp(10), NewTimestamp(20), -1},
		{NewString("a"), NewString("b"), -1},
		{NewString("ab"), NewString("a"), 1},
		{NewString("a"), NewString("a"), 0},
		{NewBlob([]byte{1}), NewBlob([]byte{1, 0}), -1},
		// Cross-width integer comparison must be numeric so widening is
		// order-preserving.
		{NewInt32(5), NewInt64(6), -1},
		{NewInt64(5), NewInt32(5), 0},
	}
	for _, c := range cases {
		if got := c.a.Compare(c.b); got != c.want {
			t.Errorf("Compare(%v, %v) = %d, want %d", c.a, c.b, got, c.want)
		}
		if got := c.b.Compare(c.a); got != -c.want {
			t.Errorf("Compare(%v, %v) = %d, want %d", c.b, c.a, got, -c.want)
		}
	}
}

func TestCompareAntisymmetric(t *testing.T) {
	f := func(a, b int64) bool {
		va, vb := NewInt64(a), NewInt64(b)
		return va.Compare(vb) == -vb.Compare(va)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	values := []Value{
		NewInt32(0), NewInt32(-1), NewInt32(math.MaxInt32), NewInt32(math.MinInt32),
		NewInt64(0), NewInt64(-1), NewInt64(math.MaxInt64), NewInt64(math.MinInt64),
		NewDouble(0), NewDouble(-1.5), NewDouble(math.Inf(1)), NewDouble(math.SmallestNonzeroFloat64),
		NewTimestamp(0), NewTimestamp(1735689600000000),
		NewString(""), NewString("hello"), NewString(string(make([]byte, 300))),
		NewBlob(nil), NewBlob([]byte{0, 1, 2, 255}),
	}
	for _, v := range values {
		buf := v.Append(nil)
		if len(buf) != v.EncodedSize() {
			t.Errorf("%v: EncodedSize = %d, wrote %d", v, v.EncodedSize(), len(buf))
		}
		got, n, err := Decode(v.Type, buf)
		if err != nil {
			t.Fatalf("Decode(%v): %v", v, err)
		}
		if n != len(buf) {
			t.Errorf("%v: consumed %d of %d", v, n, len(buf))
		}
		if !got.Equal(v) {
			t.Errorf("round trip: got %v, want %v", got, v)
		}
	}
}

func TestEncodeDecodeQuick(t *testing.T) {
	f := func(i32 int32, i64 int64, d float64, s string, b []byte) bool {
		for _, v := range []Value{NewInt32(i32), NewInt64(i64), NewDouble(d), NewString(s), NewBlob(b)} {
			if v.Type == Double && math.IsNaN(d) {
				continue // NaN != NaN; ordering of NaN is unspecified
			}
			buf := v.Append(nil)
			got, n, err := Decode(v.Type, buf)
			if err != nil || n != len(buf) || !got.Equal(v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDecodeShortBuffers(t *testing.T) {
	for _, typ := range []Type{Int32, Int64, Double, Timestamp} {
		if _, _, err := Decode(typ, []byte{1, 2}); err == nil {
			t.Errorf("Decode(%v, short) succeeded", typ)
		}
	}
	// Length prefix claims more bytes than available.
	if _, _, err := Decode(String, []byte{5, 'a'}); err == nil {
		t.Error("Decode(String, truncated) succeeded")
	}
	// Empty buffer for a varint-prefixed type.
	if _, _, err := Decode(Blob, nil); err == nil {
		t.Error("Decode(Blob, nil) succeeded")
	}
}

func TestDecodeInvalidType(t *testing.T) {
	if _, _, err := Decode(Invalid, []byte{1, 2, 3, 4}); err == nil {
		t.Error("Decode(Invalid) succeeded")
	}
}

func TestDecodeAliasesBuffer(t *testing.T) {
	v := NewString("shared")
	buf := v.Append(nil)
	got, _, err := Decode(String, buf)
	if err != nil {
		t.Fatal(err)
	}
	buf[1] = 'X' // mutate the backing buffer
	if string(got.Bytes) != "Xhared" {
		t.Errorf("decoded value should alias buffer, got %q", got.Bytes)
	}
}

func TestUvarintBoundaries(t *testing.T) {
	for _, n := range []int{0, 1, 127, 128, 300, 16383, 16384, 1 << 20} {
		b := make([]byte, n)
		v := NewBlob(b)
		buf := v.Append(nil)
		got, consumed, err := Decode(Blob, buf)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if consumed != len(buf) || len(got.Bytes) != n {
			t.Errorf("n=%d: consumed=%d len=%d", n, consumed, len(got.Bytes))
		}
	}
}
