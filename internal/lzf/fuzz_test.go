package lzf

import (
	"bytes"
	"testing"
)

// FuzzRoundTrip: any input must compress and decompress back to itself.
func FuzzRoundTrip(f *testing.F) {
	f.Add([]byte(nil))
	f.Add([]byte("a"))
	f.Add([]byte("abcabcabcabcabcabc"))
	f.Add(bytes.Repeat([]byte{0}, 1000))
	f.Add([]byte("the quick brown fox jumps over the lazy dog"))
	f.Fuzz(func(t *testing.T, src []byte) {
		comp := Compress(nil, src)
		if len(comp) > MaxCompressedLen(len(src)) {
			t.Fatalf("compressed %d > bound %d", len(comp), MaxCompressedLen(len(src)))
		}
		got, err := Decompress(make([]byte, len(src)), comp)
		if err != nil {
			t.Fatalf("decompress: %v", err)
		}
		if !bytes.Equal(got, src) {
			t.Fatal("round trip mismatch")
		}
	})
}

// FuzzDecompress: arbitrary bytes fed to the decoder must never panic or
// overrun; errors are fine.
func FuzzDecompress(f *testing.F) {
	f.Add([]byte{0x00}, 10)
	f.Add(Compress(nil, []byte("seed data seed data")), 19)
	f.Add([]byte{0xf0, 0xff, 0xff}, 100)
	f.Fuzz(func(t *testing.T, data []byte, size int) {
		if size < 0 || size > 1<<16 {
			return
		}
		Decompress(make([]byte, size), data)
	})
}
