// Package lzf implements a fast, stdlib-only, byte-oriented LZ77 block
// codec. It stands in for the LZO1X-1 library the paper uses to compress
// tablet blocks and footers (§3.5): like LZO it favors speed over ratio,
// compresses each block independently, and stores nothing but literal runs
// and back-references.
//
// Format (LZ4-block-like): a sequence of tokens. Each token byte holds the
// literal run length in its high nibble and (match length - MinMatch) in
// its low nibble; a nibble of 15 is extended by subsequent bytes of 255
// terminated by a byte < 255. Literal bytes follow, then a two-byte
// little-endian match offset (1-based, back from the current position).
// The final sequence has no match: its token's low nibble is 0 and the
// stream ends after its literals.
package lzf

import (
	"errors"
	"fmt"
)

const (
	// MinMatch is the shortest back-reference worth encoding.
	MinMatch = 4
	// maxOffset is the farthest back a match may reach (2-byte offset).
	maxOffset = 65535
	hashLog   = 14
	hashSize  = 1 << hashLog
	// lastLiterals: the final MinMatch+1 bytes are always emitted as
	// literals so the decoder's copy loops never read past the end.
	lastLiterals = MinMatch + 1
)

// Errors returned by Decompress.
var (
	ErrCorrupt  = errors.New("lzf: corrupt compressed data")
	ErrTooShort = errors.New("lzf: destination buffer too short")
)

// MaxCompressedLen returns an upper bound on the compressed size of n input
// bytes, for sizing destination buffers.
func MaxCompressedLen(n int) int {
	// Worst case: all literals. One token per 15+254*k literals plus the
	// literals themselves; n + n/255 + 16 is a comfortable bound.
	return n + n/255 + 16
}

func hash4(u uint32) uint32 {
	return (u * 2654435761) >> (32 - hashLog)
}

func load32(b []byte, i int) uint32 {
	return uint32(b[i]) | uint32(b[i+1])<<8 | uint32(b[i+2])<<16 | uint32(b[i+3])<<24
}

// Compress appends the compressed form of src to dst and returns the
// extended slice. Compress never fails; incompressible input grows by at
// most MaxCompressedLen(len(src)) - len(src) bytes.
func Compress(dst, src []byte) []byte {
	if len(src) == 0 {
		return dst
	}
	if len(src) < MinMatch+lastLiterals {
		return emitFinal(dst, src)
	}

	var table [hashSize]int32 // position+1 of last occurrence of each hash; 0 = empty
	litStart := 0             // start of the pending literal run
	i := 0
	limit := len(src) - lastLiterals

	for i <= limit-MinMatch {
		h := hash4(load32(src, i))
		cand := int(table[h]) - 1
		table[h] = int32(i + 1)
		if cand < 0 || i-cand > maxOffset || load32(src, cand) != load32(src, i) {
			i++
			continue
		}
		// Extend the match forward. Overlapping matches (offset < length)
		// are legal: the decoder copies byte-by-byte, which is what makes
		// them encode runs cheaply.
		mlen := MinMatch
		for i+mlen < len(src) && src[cand+mlen] == src[i+mlen] {
			mlen++
		}
		// Extend backward into pending literals.
		for i > litStart && cand > 0 && src[i-1] == src[cand-1] {
			i--
			cand--
			mlen++
		}
		dst = emitSequence(dst, src[litStart:i], i-cand, mlen)
		i += mlen
		litStart = i
		// Seed the table at the match tail to catch runs.
		if i <= limit-MinMatch {
			table[hash4(load32(src, i-2))] = int32(i - 1)
		}
	}
	return emitFinal(dst, src[litStart:])
}

// emitSequence writes one token: literals then a match of mlen at offset.
func emitSequence(dst, lits []byte, offset, mlen int) []byte {
	llen := len(lits)
	mext := mlen - MinMatch
	token := byte(0)
	if llen >= 15 {
		token = 15 << 4
	} else {
		token = byte(llen) << 4
	}
	if mext >= 15 {
		token |= 15
	} else {
		token |= byte(mext)
	}
	dst = append(dst, token)
	if llen >= 15 {
		dst = appendExt(dst, llen-15)
	}
	dst = append(dst, lits...)
	dst = append(dst, byte(offset), byte(offset>>8))
	if mext >= 15 {
		dst = appendExt(dst, mext-15)
	}
	return dst
}

// emitFinal writes the trailing literal-only token.
func emitFinal(dst, lits []byte) []byte {
	llen := len(lits)
	if llen >= 15 {
		dst = append(dst, 15<<4)
		dst = appendExt(dst, llen-15)
	} else {
		dst = append(dst, byte(llen)<<4)
	}
	return append(dst, lits...)
}

func appendExt(dst []byte, n int) []byte {
	for n >= 255 {
		dst = append(dst, 255)
		n -= 255
	}
	return append(dst, byte(n))
}

// Decompress decodes src into dst, which must be exactly the original
// length (tablet block headers record it). It returns the filled dst.
func Decompress(dst, src []byte) ([]byte, error) {
	di, si := 0, 0
	for si < len(src) {
		token := src[si]
		si++
		// Literals.
		llen := int(token >> 4)
		if llen == 15 {
			n, ns, err := readExt(src, si)
			if err != nil {
				return nil, err
			}
			llen += n
			si = ns
		}
		if si+llen > len(src) || di+llen > len(dst) {
			return nil, ErrCorrupt
		}
		copy(dst[di:], src[si:si+llen])
		si += llen
		di += llen
		if si == len(src) {
			// Final literal-only sequence.
			if token&0x0f != 0 {
				return nil, ErrCorrupt
			}
			break
		}
		// Match.
		if si+2 > len(src) {
			return nil, ErrCorrupt
		}
		offset := int(src[si]) | int(src[si+1])<<8
		si += 2
		mlen := int(token&0x0f) + MinMatch
		if token&0x0f == 15 {
			n, ns, err := readExt(src, si)
			if err != nil {
				return nil, err
			}
			mlen += n
			si = ns
		}
		if offset == 0 || offset > di {
			return nil, ErrCorrupt
		}
		if di+mlen > len(dst) {
			return nil, ErrTooShort
		}
		// Byte-by-byte copy: matches may overlap their own output.
		m := di - offset
		for k := 0; k < mlen; k++ {
			dst[di+k] = dst[m+k]
		}
		di += mlen
	}
	if di != len(dst) {
		return nil, fmt.Errorf("%w: decoded %d bytes, want %d", ErrCorrupt, di, len(dst))
	}
	return dst, nil
}

func readExt(src []byte, si int) (int, int, error) {
	n := 0
	for {
		if si >= len(src) {
			return 0, 0, ErrCorrupt
		}
		c := src[si]
		si++
		n += int(c)
		if c != 255 {
			return n, si, nil
		}
	}
}
