package lzf

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func roundTrip(t *testing.T, src []byte) []byte {
	t.Helper()
	comp := Compress(nil, src)
	if len(comp) > MaxCompressedLen(len(src)) {
		t.Fatalf("compressed %d bytes into %d, beyond MaxCompressedLen %d",
			len(src), len(comp), MaxCompressedLen(len(src)))
	}
	got, err := Decompress(make([]byte, len(src)), comp)
	if err != nil {
		t.Fatalf("Decompress: %v", err)
	}
	if !bytes.Equal(got, src) {
		t.Fatalf("round trip mismatch: got %d bytes, want %d", len(got), len(src))
	}
	return comp
}

func TestEmpty(t *testing.T) {
	comp := Compress(nil, nil)
	if len(comp) != 0 {
		t.Errorf("Compress(nil) = %d bytes", len(comp))
	}
	got, err := Decompress(nil, nil)
	if err != nil || len(got) != 0 {
		t.Errorf("Decompress(empty): %v, %d bytes", err, len(got))
	}
}

func TestTinyInputs(t *testing.T) {
	for n := 1; n <= 16; n++ {
		src := make([]byte, n)
		for i := range src {
			src[i] = byte(i)
		}
		roundTrip(t, src)
	}
}

func TestAllSameByte(t *testing.T) {
	src := bytes.Repeat([]byte{0x42}, 100000)
	comp := roundTrip(t, src)
	if len(comp) > len(src)/100 {
		t.Errorf("run of %d identical bytes compressed to %d; expected >100x", len(src), len(comp))
	}
}

func TestRepetitiveText(t *testing.T) {
	src := []byte(strings.Repeat("the quick brown fox jumps over the lazy dog ", 2000))
	comp := roundTrip(t, src)
	if len(comp) > len(src)/4 {
		t.Errorf("repetitive text compressed to %d of %d; expected >4x", len(comp), len(src))
	}
}

func TestIncompressibleRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	src := make([]byte, 64*1024)
	rng.Read(src)
	comp := roundTrip(t, src)
	if len(comp) > MaxCompressedLen(len(src)) {
		t.Errorf("incompressible input exceeded bound")
	}
}

func TestLongLiteralRuns(t *testing.T) {
	// Force literal lengths past the 15 and 15+255 extension boundaries.
	for _, n := range []int{14, 15, 16, 269, 270, 271, 1000} {
		rng := rand.New(rand.NewSource(int64(n)))
		src := make([]byte, n)
		rng.Read(src)
		roundTrip(t, src)
	}
}

func TestLongMatches(t *testing.T) {
	// Force match lengths past the 15+MinMatch and extension boundaries.
	for _, n := range []int{MinMatch, 18, 19, 20, 273, 274, 1 << 16} {
		src := append([]byte("abcdefgh"), bytes.Repeat([]byte{'z'}, n)...)
		src = append(src, []byte("tailtail")...)
		roundTrip(t, src)
	}
}

func TestFarOffsets(t *testing.T) {
	// A match just inside and just outside the 64k offset window.
	pattern := []byte("0123456789abcdef")
	src := append([]byte{}, pattern...)
	src = append(src, bytes.Repeat([]byte{0}, maxOffset-len(pattern)+1)...)
	src = append(src, pattern...)
	roundTrip(t, src)
}

func TestOverlappingMatch(t *testing.T) {
	// "ababab..." forces offset-2 matches longer than the offset.
	src := bytes.Repeat([]byte("ab"), 5000)
	comp := roundTrip(t, src)
	if len(comp) > 200 {
		t.Errorf("overlapping-match input compressed to %d bytes", len(comp))
	}
}

func TestQuickRoundTrip(t *testing.T) {
	f := func(src []byte) bool {
		comp := Compress(nil, src)
		got, err := Decompress(make([]byte, len(src)), comp)
		return err == nil && bytes.Equal(got, src)
	}
	cfg := &quick.Config{MaxCount: 300}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestQuickStructured(t *testing.T) {
	// Structured inputs: repeated chunks with mutations, closer to rows.
	f := func(seed int64, chunk []byte, reps uint8) bool {
		if len(chunk) == 0 {
			chunk = []byte{1}
		}
		rng := rand.New(rand.NewSource(seed))
		var src []byte
		for i := 0; i < int(reps)+2; i++ {
			src = append(src, chunk...)
			src = append(src, byte(rng.Intn(256)))
		}
		comp := Compress(nil, src)
		got, err := Decompress(make([]byte, len(src)), comp)
		return err == nil && bytes.Equal(got, src)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestDecompressCorrupt(t *testing.T) {
	src := []byte(strings.Repeat("hello world ", 100))
	comp := Compress(nil, src)
	// Truncations must error, never panic or succeed with wrong data.
	for cut := 1; cut < len(comp); cut += 7 {
		got, err := Decompress(make([]byte, len(src)), comp[:cut])
		if err == nil && bytes.Equal(got, src) {
			t.Fatalf("truncation at %d decoded successfully", cut)
		}
	}
}

func TestDecompressBitFlips(t *testing.T) {
	src := []byte(strings.Repeat("abcdefg", 64))
	comp := Compress(nil, src)
	for i := 0; i < len(comp); i++ {
		mut := append([]byte{}, comp...)
		mut[i] ^= 0xff
		// Must not panic; error or silent wrong output are both possible
		// (the format has no checksum; the block layer adds one).
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panic on bit flip at %d: %v", i, r)
				}
			}()
			Decompress(make([]byte, len(src)), mut)
		}()
	}
}

func TestDecompressWrongSize(t *testing.T) {
	src := []byte("some compressible compressible compressible data")
	comp := Compress(nil, src)
	if _, err := Decompress(make([]byte, len(src)+5), comp); err == nil {
		t.Error("oversized dst accepted")
	}
	if _, err := Decompress(make([]byte, 1), comp); err == nil {
		t.Error("undersized dst accepted")
	}
}

func TestCompressAppendsToDst(t *testing.T) {
	prefix := []byte("HDR")
	src := []byte(strings.Repeat("data", 50))
	out := Compress(prefix, src)
	if !bytes.HasPrefix(out, prefix) {
		t.Error("Compress clobbered dst prefix")
	}
	got, err := Decompress(make([]byte, len(src)), out[len(prefix):])
	if err != nil || !bytes.Equal(got, src) {
		t.Error("payload after prefix does not round trip")
	}
}

func BenchmarkCompressRepetitive(b *testing.B) {
	src := []byte(strings.Repeat("metric=bytes network=123 device=456 ", 2000))
	b.SetBytes(int64(len(src)))
	var dst []byte
	for i := 0; i < b.N; i++ {
		dst = Compress(dst[:0], src)
	}
}

func BenchmarkCompressRandom(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	src := make([]byte, 64*1024)
	rng.Read(src)
	b.SetBytes(int64(len(src)))
	var dst []byte
	for i := 0; i < b.N; i++ {
		dst = Compress(dst[:0], src)
	}
}

func BenchmarkDecompress(b *testing.B) {
	src := []byte(strings.Repeat("metric=bytes network=123 device=456 ", 2000))
	comp := Compress(nil, src)
	dst := make([]byte, len(src))
	b.SetBytes(int64(len(src)))
	for i := 0; i < b.N; i++ {
		if _, err := Decompress(dst, comp); err != nil {
			b.Fatal(err)
		}
	}
}
