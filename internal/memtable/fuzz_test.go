package memtable

import (
	"testing"

	"littletable/internal/ltval"
	"littletable/internal/schema"
)

// FuzzMemtableInsert drives an insert sequence decoded from fuzz bytes
// against a model map: duplicate acceptance, Len, Get/Contains, timespan,
// strict ascending cursor order, and the MaxKeyRow fast-path input must
// all agree with the model for every interleaving the fuzzer invents.
func FuzzMemtableInsert(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 1, 1, 1, 2, 2, 2, 3, 3, 3})
	f.Add(func() []byte {
		var b []byte
		for i := byte(0); i < 30; i++ {
			b = append(b, i%3, i%5, i, i%2)
		}
		return b
	}())

	f.Fuzz(func(t *testing.T, data []byte) {
		sc := schema.MustNew([]schema.Column{
			{Name: "network", Type: ltval.Int64},
			{Name: "device", Type: ltval.Int64},
			{Name: "ts", Type: ltval.Timestamp},
			{Name: "value", Type: ltval.Double},
		}, []string{"network", "device", "ts"})
		m := New(sc)
		model := map[[3]int64]bool{}
		var minTs, maxTs int64

		// Each 4-byte chunk is one insert: small key ranges so the fuzzer
		// hits duplicates, rotations, and both cursor directions often.
		for len(data) >= 4 {
			n, d, ts := int64(data[0]%8), int64(data[1]%16), int64(data[2])
			val := float64(data[3])
			data = data[4:]
			k := [3]int64{n, d, ts}
			added := m.Insert(100, schema.Row{
				ltval.NewInt64(n), ltval.NewInt64(d),
				ltval.NewTimestamp(ts), ltval.NewDouble(val),
			})
			if added == model[k] {
				t.Fatalf("Insert(%v) = %v, model says %v", k, added, !model[k])
			}
			if added {
				if len(model) == 0 || ts < minTs {
					minTs = ts
				}
				if len(model) == 0 || ts > maxTs {
					maxTs = ts
				}
				model[k] = true
			}
		}

		if m.Len() != len(model) {
			t.Fatalf("Len = %d, model has %d", m.Len(), len(model))
		}
		if !m.Empty() {
			lo, hi := m.Timespan()
			if lo != minTs || hi != maxTs {
				t.Fatalf("Timespan = (%d,%d), model (%d,%d)", lo, hi, minTs, maxTs)
			}
		}
		for k := range model {
			key := []ltval.Value{ltval.NewInt64(k[0]), ltval.NewInt64(k[1]), ltval.NewTimestamp(k[2])}
			if !m.Contains(key) {
				t.Fatalf("Contains(%v) = false for inserted key", k)
			}
			if _, ok := m.Get(key); !ok {
				t.Fatalf("Get(%v) missed an inserted key", k)
			}
		}

		for _, asc := range []bool{true, false} {
			c := m.Cursor(asc)
			seen := 0
			var last schema.Row
			for c.Next() {
				r := c.Row()
				if last != nil {
					cmp := sc.CompareKeys(last, r)
					if asc && cmp >= 0 || !asc && cmp <= 0 {
						t.Fatalf("cursor(asc=%v) out of order at row %d", asc, seen)
					}
				}
				last = schema.CloneRow(r)
				seen++
			}
			if seen != len(model) {
				t.Fatalf("cursor(asc=%v) yielded %d rows, model has %d", asc, seen, len(model))
			}
		}

		if row, ok := m.MaxKeyRow(); ok != (len(model) > 0) {
			t.Fatalf("MaxKeyRow ok=%v with %d rows", ok, len(model))
		} else if ok {
			var want [3]int64
			first := true
			for k := range model {
				if first || keyLess(want, k) {
					want, first = k, false
				}
			}
			got := [3]int64{row[0].Int, row[1].Int, row[2].Int}
			if got != want {
				t.Fatalf("MaxKeyRow = %v, model max %v", got, want)
			}
		}
	})
}

func keyLess(a, b [3]int64) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}
