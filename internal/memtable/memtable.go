// Package memtable implements LittleTable's in-memory tablets (§3.2):
// newly inserted rows go into a balanced binary tree ordered by primary
// key. When a tablet reaches its size or age limit the engine marks it
// read-only and flushes it to disk as a sorted on-disk tablet.
//
// The tree is a left-leaning red-black tree. Memtables are not internally
// synchronized: the table engine serializes writers per table (the
// applications are single-writer, §2.3.4) and freezes tablets before
// flushing, after which concurrent readers are safe.
package memtable

import (
	"littletable/internal/ltval"
	"littletable/internal/schema"
)

type color bool

const (
	red   color = true
	black color = false
)

type node struct {
	row         schema.Row
	left, right *node
	c           color
}

func isRed(n *node) bool { return n != nil && n.c == red }

// Memtable is one in-memory tablet.
type Memtable struct {
	sc        *schema.Schema
	root      *node
	count     int
	sizeBytes int
	minTs     int64
	maxTs     int64
	createdAt int64 // engine time of first insert, for age-based flushing
	frozen    bool

	inserted bool // whether any row has ever been inserted
	dup      bool // scratch flag for Insert
}

// New returns an empty memtable for rows of schema sc.
func New(sc *schema.Schema) *Memtable {
	return &Memtable{sc: sc}
}

// Schema returns the schema the memtable was created with.
func (m *Memtable) Schema() *schema.Schema { return m.sc }

// Len returns the number of rows.
func (m *Memtable) Len() int { return m.count }

// SizeBytes returns the approximate encoded size of the rows, the number
// the 16 MB flush threshold (§3.3) is compared against.
func (m *Memtable) SizeBytes() int { return m.sizeBytes }

// Empty reports whether the memtable holds no rows.
func (m *Memtable) Empty() bool { return m.count == 0 }

// Timespan returns the minimum and maximum row timestamps. Valid only when
// the memtable is non-empty.
func (m *Memtable) Timespan() (minTs, maxTs int64) { return m.minTs, m.maxTs }

// CreatedAt returns the engine time of the first insert, or 0 if empty.
func (m *Memtable) CreatedAt() int64 { return m.createdAt }

// Freeze marks the memtable read-only (§3.2). Inserts after Freeze panic:
// the engine must never route rows to a flushing tablet.
func (m *Memtable) Freeze() { m.frozen = true }

// Frozen reports whether Freeze has been called.
func (m *Memtable) Frozen() bool { return m.frozen }

// Insert adds row, which must match the schema, and reports whether it was
// added: false means a row with the same primary key already exists, which
// the engine surfaces as a uniqueness violation (§3.4.4). The row is
// retained as-is; callers must not mutate it afterward.
func (m *Memtable) Insert(now int64, row schema.Row) bool {
	if m.frozen {
		panic("memtable: insert into frozen tablet")
	}
	m.dup = false
	m.root = m.insert(m.root, row)
	m.root.c = black
	if m.dup {
		return false
	}
	ts := m.sc.Ts(row)
	if !m.inserted {
		m.minTs, m.maxTs = ts, ts
		m.createdAt = now
		m.inserted = true
	} else {
		if ts < m.minTs {
			m.minTs = ts
		}
		if ts > m.maxTs {
			m.maxTs = ts
		}
	}
	m.count++
	m.sizeBytes += m.sc.EncodedRowSize(row)
	return true
}

func (m *Memtable) insert(n *node, row schema.Row) *node {
	if n == nil {
		return &node{row: row, c: red}
	}
	switch cmp := m.sc.CompareKeys(row, n.row); {
	case cmp < 0:
		n.left = m.insert(n.left, row)
	case cmp > 0:
		n.right = m.insert(n.right, row)
	default:
		m.dup = true
		return n
	}
	if isRed(n.right) && !isRed(n.left) {
		n = rotateLeft(n)
	}
	if isRed(n.left) && isRed(n.left.left) {
		n = rotateRight(n)
	}
	if isRed(n.left) && isRed(n.right) {
		flipColors(n)
	}
	return n
}

func rotateLeft(h *node) *node {
	x := h.right
	h.right = x.left
	x.left = h
	x.c = h.c
	h.c = red
	return x
}

func rotateRight(h *node) *node {
	x := h.left
	h.left = x.right
	x.right = h
	x.c = h.c
	h.c = red
	return x
}

func flipColors(h *node) {
	h.c = red
	h.left.c = black
	h.right.c = black
}

// Get returns the row with exactly the given full primary key, if present.
func (m *Memtable) Get(key []ltval.Value) (schema.Row, bool) {
	n := m.root
	for n != nil {
		switch cmp := m.sc.CompareRowToKey(n.row, key); {
		case cmp > 0:
			n = n.left
		case cmp < 0:
			n = n.right
		default:
			return n.row, true
		}
	}
	return nil, false
}

// Contains reports whether a row with the given full primary key exists.
func (m *Memtable) Contains(key []ltval.Value) bool {
	_, ok := m.Get(key)
	return ok
}

// MaxKeyRow returns the row with the largest primary key, used by the
// ascending-insert uniqueness fast path (§3.4.4).
func (m *Memtable) MaxKeyRow() (schema.Row, bool) {
	n := m.root
	if n == nil {
		return nil, false
	}
	for n.right != nil {
		n = n.right
	}
	return n.row, true
}

// A Cursor iterates rows in key order. Next must be called before Row.
type Cursor struct {
	m     *Memtable
	stack []*node
	cur   *node
	asc   bool
}

// Cursor returns an iterator over the whole memtable, ascending if asc.
func (m *Memtable) Cursor(asc bool) *Cursor {
	c := &Cursor{m: m, asc: asc}
	n := m.root
	for n != nil {
		c.stack = append(c.stack, n)
		if asc {
			n = n.left
		} else {
			n = n.right
		}
	}
	return c
}

// Seek returns a cursor positioned at the first row >= key (ascending) or
// <= key (descending). A partial key acts as a prefix bound: ascending
// seeks land on the first row with that prefix; descending seeks land on
// the last row equal to the prefix or the greatest row below it.
func (m *Memtable) Seek(key []ltval.Value, asc bool) *Cursor {
	c := &Cursor{m: m, asc: asc}
	n := m.root
	for n != nil {
		cmp := m.sc.CompareRowToKey(n.row, key)
		if asc {
			if cmp >= 0 {
				c.stack = append(c.stack, n)
				n = n.left
			} else {
				n = n.right
			}
		} else {
			if cmp <= 0 {
				c.stack = append(c.stack, n)
				n = n.right
			} else {
				n = n.left
			}
		}
	}
	return c
}

// Next advances the cursor and reports whether a row is available.
func (c *Cursor) Next() bool {
	if len(c.stack) == 0 {
		c.cur = nil
		return false
	}
	n := c.stack[len(c.stack)-1]
	c.stack = c.stack[:len(c.stack)-1]
	c.cur = n
	child := n.right
	if !c.asc {
		child = n.left
	}
	for child != nil {
		c.stack = append(c.stack, child)
		if c.asc {
			child = child.left
		} else {
			child = child.right
		}
	}
	return true
}

// Row returns the current row. Valid after Next reports true.
func (c *Cursor) Row() schema.Row { return c.cur.row }
