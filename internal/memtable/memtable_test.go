package memtable

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"littletable/internal/ltval"
	"littletable/internal/schema"
)

func testSchema(t testing.TB) *schema.Schema {
	t.Helper()
	return schema.MustNew([]schema.Column{
		{Name: "network", Type: ltval.Int64},
		{Name: "device", Type: ltval.Int64},
		{Name: "ts", Type: ltval.Timestamp},
		{Name: "value", Type: ltval.Double},
	}, []string{"network", "device", "ts"})
}

func row(n, d, ts int64, v float64) schema.Row {
	return schema.Row{ltval.NewInt64(n), ltval.NewInt64(d), ltval.NewTimestamp(ts), ltval.NewDouble(v)}
}

func key(n, d, ts int64) []ltval.Value {
	return []ltval.Value{ltval.NewInt64(n), ltval.NewInt64(d), ltval.NewTimestamp(ts)}
}

func collect(c *Cursor) []schema.Row {
	var out []schema.Row
	for c.Next() {
		out = append(out, c.Row())
	}
	return out
}

func TestInsertAndGet(t *testing.T) {
	m := New(testSchema(t))
	if !m.Insert(100, row(1, 2, 50, 1.5)) {
		t.Fatal("insert failed")
	}
	got, ok := m.Get(key(1, 2, 50))
	if !ok || got[3].Float != 1.5 {
		t.Fatalf("Get = %v, %v", got, ok)
	}
	if _, ok := m.Get(key(1, 2, 51)); ok {
		t.Error("Get found a missing key")
	}
	if !m.Contains(key(1, 2, 50)) || m.Contains(key(9, 9, 9)) {
		t.Error("Contains wrong")
	}
}

func TestDuplicateRejected(t *testing.T) {
	m := New(testSchema(t))
	if !m.Insert(0, row(1, 2, 50, 1)) {
		t.Fatal("first insert failed")
	}
	if m.Insert(0, row(1, 2, 50, 99)) {
		t.Fatal("duplicate key accepted")
	}
	if m.Len() != 1 {
		t.Errorf("Len = %d after duplicate", m.Len())
	}
	got, _ := m.Get(key(1, 2, 50))
	if got[3].Float != 1 {
		t.Error("duplicate overwrote original row")
	}
}

func TestStatsTracking(t *testing.T) {
	sc := testSchema(t)
	m := New(sc)
	if !m.Empty() || m.Len() != 0 || m.SizeBytes() != 0 {
		t.Error("fresh memtable not empty")
	}
	m.Insert(1000, row(1, 1, 500, 0))
	m.Insert(1001, row(1, 1, 100, 0))
	m.Insert(1002, row(1, 1, 900, 0))
	lo, hi := m.Timespan()
	if lo != 100 || hi != 900 {
		t.Errorf("timespan [%d, %d], want [100, 900]", lo, hi)
	}
	if m.CreatedAt() != 1000 {
		t.Errorf("CreatedAt = %d, want time of first insert", m.CreatedAt())
	}
	wantSize := 3 * sc.EncodedRowSize(row(1, 1, 1, 0))
	if m.SizeBytes() != wantSize {
		t.Errorf("SizeBytes = %d, want %d", m.SizeBytes(), wantSize)
	}
}

func TestOrderedIteration(t *testing.T) {
	m := New(testSchema(t))
	rng := rand.New(rand.NewSource(7))
	const n = 1000
	for i := 0; i < n; i++ {
		m.Insert(0, row(rng.Int63n(5), rng.Int63n(50), rng.Int63n(10000), 0))
	}
	rows := collect(m.Cursor(true))
	if len(rows) != m.Len() {
		t.Fatalf("cursor returned %d rows, Len = %d", len(rows), m.Len())
	}
	sc := m.Schema()
	for i := 1; i < len(rows); i++ {
		if sc.CompareKeys(rows[i-1], rows[i]) >= 0 {
			t.Fatalf("ascending order violated at %d", i)
		}
	}
	desc := collect(m.Cursor(false))
	if len(desc) != len(rows) {
		t.Fatalf("descending cursor returned %d rows", len(desc))
	}
	for i := range desc {
		if sc.CompareKeys(desc[i], rows[len(rows)-1-i]) != 0 {
			t.Fatalf("descending order is not the reverse of ascending at %d", i)
		}
	}
}

func TestSeekAscending(t *testing.T) {
	m := New(testSchema(t))
	for d := int64(0); d < 10; d++ {
		for ts := int64(0); ts < 10; ts++ {
			m.Insert(0, row(1, d, ts*10, 0))
		}
	}
	// Exact key.
	c := m.Seek(key(1, 5, 50), true)
	if !c.Next() {
		t.Fatal("seek found nothing")
	}
	r := c.Row()
	if r[1].Int != 5 || r[2].Int != 50 {
		t.Fatalf("seek landed on (%d, %d)", r[1].Int, r[2].Int)
	}
	// Between keys: lands on next greater.
	c = m.Seek(key(1, 5, 55), true)
	c.Next()
	if r := c.Row(); r[1].Int != 5 || r[2].Int != 60 {
		t.Fatalf("between-keys seek landed on (%d, %d)", r[1].Int, r[2].Int)
	}
	// Prefix seek: first row of device 7.
	c = m.Seek([]ltval.Value{ltval.NewInt64(1), ltval.NewInt64(7)}, true)
	c.Next()
	if r := c.Row(); r[1].Int != 7 || r[2].Int != 0 {
		t.Fatalf("prefix seek landed on (%d, %d)", r[1].Int, r[2].Int)
	}
	// Past the end.
	c = m.Seek(key(2, 0, 0), true)
	if c.Next() {
		t.Error("seek past end returned a row")
	}
}

func TestSeekDescending(t *testing.T) {
	m := New(testSchema(t))
	for d := int64(0); d < 10; d++ {
		for ts := int64(0); ts < 10; ts++ {
			m.Insert(0, row(1, d, ts*10, 0))
		}
	}
	// Descending from exact key.
	c := m.Seek(key(1, 5, 50), false)
	c.Next()
	if r := c.Row(); r[1].Int != 5 || r[2].Int != 50 {
		t.Fatalf("descending seek landed on (%d, %d)", r[1].Int, r[2].Int)
	}
	if !c.Next() {
		t.Fatal("descending cursor exhausted early")
	}
	if r := c.Row(); r[1].Int != 5 || r[2].Int != 40 {
		t.Fatalf("descending next was (%d, %d)", r[1].Int, r[2].Int)
	}
	// Prefix seek descending: last row of device 7.
	c = m.Seek([]ltval.Value{ltval.NewInt64(1), ltval.NewInt64(7)}, false)
	c.Next()
	if r := c.Row(); r[1].Int != 7 || r[2].Int != 90 {
		t.Fatalf("descending prefix seek landed on (%d, %d)", r[1].Int, r[2].Int)
	}
	// Before the beginning.
	c = m.Seek(key(0, 0, 0), false)
	if c.Next() {
		r := c.Row()
		if r[0].Int >= 1 {
			t.Error("descending seek below min returned a too-large row")
		}
	}
}

func TestMaxKeyRow(t *testing.T) {
	m := New(testSchema(t))
	if _, ok := m.MaxKeyRow(); ok {
		t.Error("empty memtable has a max row")
	}
	m.Insert(0, row(1, 1, 10, 0))
	m.Insert(0, row(3, 0, 5, 0))
	m.Insert(0, row(2, 9, 99, 0))
	r, ok := m.MaxKeyRow()
	if !ok || r[0].Int != 3 {
		t.Fatalf("MaxKeyRow = %v", r)
	}
}

func TestFreeze(t *testing.T) {
	m := New(testSchema(t))
	m.Insert(0, row(1, 1, 1, 0))
	m.Freeze()
	if !m.Frozen() {
		t.Error("Frozen() false after Freeze")
	}
	defer func() {
		if recover() == nil {
			t.Error("insert into frozen memtable did not panic")
		}
	}()
	m.Insert(0, row(1, 1, 2, 0))
}

func TestRedBlackInvariants(t *testing.T) {
	// The LLRB must stay balanced: validate no red right links, no two
	// consecutive red left links, and equal black height on all paths.
	m := New(testSchema(t))
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 5000; i++ {
		m.Insert(0, row(rng.Int63n(100), rng.Int63n(100), rng.Int63n(1000), 0))
		if i%500 == 0 {
			if h := checkLLRB(t, m.root); h < 0 {
				t.Fatalf("LLRB invariants violated after %d inserts", i+1)
			}
		}
	}
	h := checkLLRB(t, m.root)
	if h < 0 {
		t.Fatal("final tree invalid")
	}
	// Black height of a balanced tree with n nodes is O(log n).
	if h > 3+2*log2(m.Len()) {
		t.Errorf("black height %d too large for %d nodes", h, m.Len())
	}
}

func log2(n int) int {
	h := 0
	for n > 1 {
		n >>= 1
		h++
	}
	return h
}

// checkLLRB returns the black height, or -1 on violation.
func checkLLRB(t *testing.T, n *node) int {
	if n == nil {
		return 0
	}
	if isRed(n.right) {
		t.Error("red right link")
		return -1
	}
	if isRed(n) && isRed(n.left) {
		t.Error("two consecutive red links")
		return -1
	}
	lh := checkLLRB(t, n.left)
	rh := checkLLRB(t, n.right)
	if lh < 0 || rh < 0 || lh != rh {
		t.Error("unequal black heights")
		return -1
	}
	if n.c == black {
		return lh + 1
	}
	return lh
}

func TestQuickMatchesSortedSlice(t *testing.T) {
	sc := testSchema(t)
	f := func(keys []uint16) bool {
		m := New(sc)
		uniq := map[uint16]bool{}
		for _, k := range keys {
			r := row(int64(k>>8), int64(k&0xff), int64(k), float64(k))
			if m.Insert(0, r) == uniq[k] {
				return false // insert result must match prior presence
			}
			uniq[k] = true
		}
		var want []uint16
		for k := range uniq {
			want = append(want, k)
		}
		sort.Slice(want, func(i, j int) bool {
			a, b := want[i], want[j]
			if a>>8 != b>>8 {
				return a>>8 < b>>8
			}
			if a&0xff != b&0xff {
				return a&0xff < b&0xff
			}
			return a < b
		})
		got := collect(m.Cursor(true))
		if len(got) != len(want) {
			return false
		}
		for i, k := range want {
			if got[i][0].Int != int64(k>>8) || got[i][1].Int != int64(k&0xff) || got[i][2].Int != int64(k) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSeekQuick(t *testing.T) {
	sc := testSchema(t)
	m := New(sc)
	present := map[int64]bool{}
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 500; i++ {
		ts := rng.Int63n(2000)
		if m.Insert(0, row(1, 1, ts, 0)) {
			present[ts] = true
		}
	}
	var sorted []int64
	for ts := range present {
		sorted = append(sorted, ts)
	}
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	for probe := int64(0); probe < 2000; probe += 13 {
		// Ascending: first ts >= probe.
		c := m.Seek(key(1, 1, probe), true)
		i := sort.Search(len(sorted), func(i int) bool { return sorted[i] >= probe })
		if i == len(sorted) {
			if c.Next() {
				t.Fatalf("probe %d: expected exhausted ascending cursor", probe)
			}
		} else {
			if !c.Next() || c.Row()[2].Int != sorted[i] {
				t.Fatalf("probe %d: ascending got %v, want %d", probe, c.cur, sorted[i])
			}
		}
		// Descending: last ts <= probe.
		c = m.Seek(key(1, 1, probe), false)
		j := sort.Search(len(sorted), func(i int) bool { return sorted[i] > probe }) - 1
		if j < 0 {
			if c.Next() {
				t.Fatalf("probe %d: expected exhausted descending cursor", probe)
			}
		} else {
			if !c.Next() || c.Row()[2].Int != sorted[j] {
				t.Fatalf("probe %d: descending got wrong row", probe)
			}
		}
	}
}

func BenchmarkInsert(b *testing.B) {
	sc := testSchema(b)
	m := New(sc)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.Insert(0, row(int64(i%16), int64(i%4096), int64(i), 0))
	}
}

func BenchmarkCursorScan(b *testing.B) {
	sc := testSchema(b)
	m := New(sc)
	for i := 0; i < 100000; i++ {
		m.Insert(0, row(int64(i%16), int64(i%4096), int64(i), 0))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := m.Cursor(true)
		for c.Next() {
		}
	}
}
