// Package netfault is a fault-injecting TCP proxy, the network-path
// counterpart of internal/vfs.FaultFS: the PR 1 crash harness proves the
// storage layer against power cuts at every barrier, and this package
// proves the wire layer against the partial failures a fleet of
// long-lived client connections actually sees (§3.1, §4.1) — added
// latency, dropped and reset connections, truncated writes, and byte
// corruption on lossy links.
//
// A Proxy listens on loopback and forwards byte streams to a target
// address. Every forwarded chunk consults a seeded PRNG against the
// configured fault rates, so a failing chaos run is replayable from its
// seed, and every fault decision is appended to a human-readable script
// (mirroring the crash harness's LTCRASH_ARTIFACT fault-script dump).
package netfault

import (
	"fmt"
	"math/rand"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Config sets the per-chunk fault probabilities and the injected-latency
// ceiling. All rates are in [0, 1] and independent; the zero value is a
// transparent proxy.
type Config struct {
	// Seed drives every fault decision; runs with the same seed and the
	// same traffic shape explore the same fault schedule.
	Seed int64
	// DropRate is the probability a chunk is discarded and the connection
	// closed cleanly (FIN) — the far end sees an EOF mid-stream.
	DropRate float64
	// ResetRate is the probability the connection is torn down with an
	// RST (SO_LINGER 0), the way a crashed peer or a middlebox kills it.
	ResetRate float64
	// PartialRate is the probability a chunk is truncated partway through
	// and the connection then closed — a write that "succeeded" on the
	// sender but only partly arrived.
	PartialRate float64
	// CorruptRate is the probability one byte of a chunk is flipped in
	// transit. The wire protocol has no frame checksums (TCP's own are
	// assumed); corruption must surface as a decode error or a dropped
	// connection, never a panic.
	CorruptRate float64
	// LatencyMax, when positive, delays each chunk by a uniform duration
	// in [0, LatencyMax).
	LatencyMax time.Duration
}

// Stats count the faults a Proxy has injected.
type Stats struct {
	ConnsOpened   atomic.Int64
	ConnsDropped  atomic.Int64 // clean mid-stream closes
	ConnsReset    atomic.Int64 // RST teardowns
	PartialWrites atomic.Int64 // truncated chunks
	BytesCorrupt  atomic.Int64 // flipped bytes
	ChunksDelayed atomic.Int64 // chunks that paid injected latency
}

// Proxy forwards TCP streams to a target, injecting faults per Config.
type Proxy struct {
	cfg   Config
	lis   net.Listener
	stats Stats

	mu      sync.Mutex
	rng     *rand.Rand
	target  string
	conns   map[net.Conn]struct{}
	script  []string
	blocked bool // DropAll: refuse new conns, like a black-holed address
	closed  bool
	wg      sync.WaitGroup
}

// New starts a proxy on a fresh loopback port forwarding to target.
func New(target string, cfg Config) (*Proxy, error) {
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	p := &Proxy{
		cfg:    cfg,
		lis:    lis,
		rng:    rand.New(rand.NewSource(cfg.Seed)),
		target: target,
		conns:  make(map[net.Conn]struct{}),
	}
	p.wg.Add(1)
	go p.acceptLoop()
	return p, nil
}

// Addr returns the proxy's listen address; clients dial this instead of
// the real server.
func (p *Proxy) Addr() string { return p.lis.Addr().String() }

// Stats exposes the fault counters.
func (p *Proxy) Stats() *Stats { return &p.stats }

// SetTarget redirects new connections, e.g. after a server restart on a
// new port. Existing connections keep their original target.
func (p *Proxy) SetTarget(addr string) {
	p.mu.Lock()
	p.target = addr
	p.logf("target -> %s", addr)
	p.mu.Unlock()
}

// DropAll toggles black-hole mode: while set, new connections are
// accepted and immediately closed and existing ones are cut, so clients
// exercise their dial-retry and backoff paths.
func (p *Proxy) DropAll(on bool) {
	p.mu.Lock()
	p.blocked = on
	p.logf("dropall=%v", on)
	p.mu.Unlock()
	if on {
		p.CutAll()
	}
}

// CutAll hard-closes every live proxied connection — a momentary network
// partition or a middlebox flushing its flow table.
func (p *Proxy) CutAll() {
	p.mu.Lock()
	for c := range p.conns {
		c.Close()
	}
	p.logf("cutall (%d conns)", len(p.conns))
	p.mu.Unlock()
}

// Script returns the recorded fault decisions in order, for the chaos
// harness's on-failure artifact.
func (p *Proxy) Script() string {
	p.mu.Lock()
	defer p.mu.Unlock()
	return strings.Join(p.script, "\n")
}

// Close stops accepting and severs every proxied connection.
func (p *Proxy) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	for c := range p.conns {
		c.Close()
	}
	p.mu.Unlock()
	err := p.lis.Close()
	p.wg.Wait()
	return err
}

// logf appends to the fault script; callers hold p.mu.
func (p *Proxy) logf(format string, args ...interface{}) {
	p.script = append(p.script, fmt.Sprintf(format, args...))
}

func (p *Proxy) acceptLoop() {
	defer p.wg.Done()
	for {
		conn, err := p.lis.Accept()
		if err != nil {
			return
		}
		p.mu.Lock()
		if p.closed {
			p.mu.Unlock()
			conn.Close()
			continue
		}
		if p.blocked {
			p.logf("refuse conn (dropall)")
			p.mu.Unlock()
			conn.Close()
			continue
		}
		target := p.target
		p.mu.Unlock()
		p.stats.ConnsOpened.Add(1)
		p.wg.Add(1)
		go p.proxyConn(conn, target)
	}
}

// proxyConn forwards both directions until one side dies or a fault kills
// the pair.
func (p *Proxy) proxyConn(client net.Conn, target string) {
	defer p.wg.Done()
	upstream, err := net.DialTimeout("tcp", target, 5*time.Second)
	if err != nil {
		p.mu.Lock()
		p.logf("upstream dial %s failed: %v", target, err)
		p.mu.Unlock()
		client.Close()
		return
	}
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		client.Close()
		upstream.Close()
		return
	}
	p.conns[client] = struct{}{}
	p.conns[upstream] = struct{}{}
	p.mu.Unlock()

	var once sync.Once
	closeBoth := func(reset bool) {
		once.Do(func() {
			if reset {
				setLinger0(client)
				setLinger0(upstream)
			}
			client.Close()
			upstream.Close()
			p.mu.Lock()
			delete(p.conns, client)
			delete(p.conns, upstream)
			p.mu.Unlock()
		})
	}

	var wg sync.WaitGroup
	wg.Add(2)
	go func() { defer wg.Done(); p.pump("c->s", client, upstream, closeBoth) }()
	go func() { defer wg.Done(); p.pump("s->c", upstream, client, closeBoth) }()
	wg.Wait()
	closeBoth(false)
}

func setLinger0(c net.Conn) {
	if tc, ok := c.(*net.TCPConn); ok {
		tc.SetLinger(0)
	}
}

// pump copies src→dst chunk by chunk, rolling the fault dice before each
// forward.
func (p *Proxy) pump(dir string, src, dst net.Conn, closeBoth func(reset bool)) {
	buf := make([]byte, 16<<10)
	for {
		n, err := src.Read(buf)
		if n > 0 {
			chunk := buf[:n]
			switch f := p.roll(dir, n); f.kind {
			case faultNone:
			case faultDelay:
				p.stats.ChunksDelayed.Add(1)
				time.Sleep(f.delay)
			case faultDrop:
				p.stats.ConnsDropped.Add(1)
				closeBoth(false)
				return
			case faultReset:
				p.stats.ConnsReset.Add(1)
				closeBoth(true)
				return
			case faultPartial:
				p.stats.PartialWrites.Add(1)
				if f.cut > 0 {
					dst.Write(chunk[:f.cut])
				}
				closeBoth(false)
				return
			case faultCorrupt:
				p.stats.BytesCorrupt.Add(1)
				chunk[f.cut] ^= f.mask
			}
			if _, werr := dst.Write(chunk); werr != nil {
				closeBoth(false)
				return
			}
		}
		if err != nil {
			// EOF or a closed socket: propagate the close to the peer.
			closeBoth(false)
			return
		}
	}
}

type faultKind int

const (
	faultNone faultKind = iota
	faultDelay
	faultDrop
	faultReset
	faultPartial
	faultCorrupt
)

type fault struct {
	kind  faultKind
	delay time.Duration
	cut   int  // partial: bytes forwarded; corrupt: byte index
	mask  byte // corrupt: bit flip
}

// roll decides the fate of one n-byte chunk. Decisions share one seeded
// PRNG under the proxy mutex so a run's fault schedule depends only on
// the seed and the order chunks arrive.
func (p *Proxy) roll(dir string, n int) fault {
	p.mu.Lock()
	defer p.mu.Unlock()
	r := p.rng
	switch {
	case p.cfg.DropRate > 0 && r.Float64() < p.cfg.DropRate:
		p.logf("%s: drop conn (chunk %dB)", dir, n)
		return fault{kind: faultDrop}
	case p.cfg.ResetRate > 0 && r.Float64() < p.cfg.ResetRate:
		p.logf("%s: reset conn (chunk %dB)", dir, n)
		return fault{kind: faultReset}
	case p.cfg.PartialRate > 0 && r.Float64() < p.cfg.PartialRate:
		cut := r.Intn(n)
		p.logf("%s: partial write %d/%dB then close", dir, cut, n)
		return fault{kind: faultPartial, cut: cut}
	case p.cfg.CorruptRate > 0 && r.Float64() < p.cfg.CorruptRate:
		idx := r.Intn(n)
		mask := byte(1 << r.Intn(8))
		p.logf("%s: corrupt byte %d/%d mask %#x", dir, idx, n, mask)
		return fault{kind: faultCorrupt, cut: idx, mask: mask}
	case p.cfg.LatencyMax > 0:
		d := time.Duration(r.Int63n(int64(p.cfg.LatencyMax)))
		return fault{kind: faultDelay, delay: d}
	}
	return fault{kind: faultNone}
}
