package netfault

import (
	"bytes"
	"io"
	"net"
	"strings"
	"testing"
	"time"
)

// echoServer accepts connections and echoes bytes back until closed.
func echoServer(t *testing.T) (addr string, closeFn func()) {
	t.Helper()
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		for {
			c, err := lis.Accept()
			if err != nil {
				close(done)
				return
			}
			go func() {
				defer c.Close()
				io.Copy(c, c)
			}()
		}
	}()
	return lis.Addr().String(), func() { lis.Close(); <-done }
}

func TestTransparentWhenNoFaults(t *testing.T) {
	addr, stop := echoServer(t)
	defer stop()
	p, err := New(addr, Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	conn, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	msg := []byte("hello through the proxy")
	if _, err := conn.Write(msg); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(msg))
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := io.ReadFull(conn, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("echo mismatch: %q", got)
	}
	if n := p.Stats().ConnsOpened.Load(); n != 1 {
		t.Errorf("ConnsOpened = %d", n)
	}
}

func TestDropRateKillsConnections(t *testing.T) {
	addr, stop := echoServer(t)
	defer stop()
	p, err := New(addr, Config{Seed: 7, DropRate: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	conn, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.Write([]byte("doomed"))
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := conn.Read(make([]byte, 1)); err == nil {
		t.Fatal("expected the dropped connection to error")
	}
	if p.Stats().ConnsDropped.Load() == 0 {
		t.Error("drop not counted")
	}
	if !strings.Contains(p.Script(), "drop conn") {
		t.Errorf("fault script missing drop entry:\n%s", p.Script())
	}
}

func TestCorruptionFlipsBytes(t *testing.T) {
	addr, stop := echoServer(t)
	defer stop()
	p, err := New(addr, Config{Seed: 3, CorruptRate: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	conn, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	msg := []byte("aaaaaaaaaaaaaaaa")
	conn.Write(msg)
	got := make([]byte, len(msg))
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := io.ReadFull(conn, got); err != nil {
		t.Fatal(err)
	}
	// Corruption is applied per chunk in each direction; at rate 1 the
	// round trip flips at least one byte.
	if bytes.Equal(got, msg) {
		t.Fatal("corruption rate 1 left the payload intact")
	}
	if p.Stats().BytesCorrupt.Load() == 0 {
		t.Error("corruption not counted")
	}
}

func TestDropAllBlackholes(t *testing.T) {
	addr, stop := echoServer(t)
	defer stop()
	p, err := New(addr, Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	conn, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	p.DropAll(true)
	// The existing connection is cut...
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := conn.Read(make([]byte, 1)); err == nil {
		t.Fatal("existing conn survived DropAll")
	}
	// ...and new ones are refused at the application layer (accepted then
	// immediately closed).
	c2, err := net.Dial("tcp", p.Addr())
	if err == nil {
		c2.SetReadDeadline(time.Now().Add(5 * time.Second))
		if _, rerr := c2.Read(make([]byte, 1)); rerr == nil {
			t.Fatal("new conn usable under DropAll")
		}
		c2.Close()
	}
	p.DropAll(false)
	// Service resumes.
	c3, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c3.Close()
	c3.Write([]byte("x"))
	c3.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := io.ReadFull(c3, make([]byte, 1)); err != nil {
		t.Fatalf("proxy did not recover from DropAll: %v", err)
	}
}

func TestSetTargetRedirects(t *testing.T) {
	addr1, stop1 := echoServer(t)
	defer stop1()
	p, err := New(addr1, Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	// Second backend answers with a distinguishable transform? An echo is
	// an echo — instead just verify a conn still works after retarget.
	addr2, stop2 := echoServer(t)
	defer stop2()
	p.SetTarget(addr2)
	stop1() // old backend gone; new conns must hit addr2
	conn, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.Write([]byte("y"))
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := io.ReadFull(conn, make([]byte, 1)); err != nil {
		t.Fatalf("retargeted conn failed: %v", err)
	}
}

func TestSameSeedSameSchedule(t *testing.T) {
	// Two proxies with the same seed and the same single-stream traffic
	// make the same fault decisions.
	run := func() string {
		addr, stop := echoServer(t)
		defer stop()
		p, err := New(addr, Config{Seed: 42, DropRate: 0.3})
		if err != nil {
			t.Fatal(err)
		}
		defer p.Close()
		for i := 0; i < 10; i++ {
			conn, err := net.Dial("tcp", p.Addr())
			if err != nil {
				continue
			}
			conn.Write([]byte("chunk"))
			conn.SetReadDeadline(time.Now().Add(time.Second))
			io.ReadFull(conn, make([]byte, 5))
			conn.Close()
		}
		return p.Script()
	}
	if a, b := run(), run(); a != b {
		t.Errorf("seeded schedules diverged:\n--A--\n%s\n--B--\n%s", a, b)
	}
}
