// Package period implements LittleTable's application-driven timespans
// (§3.4.2). Time is grouped into three ranges, each measured in even
// intervals from the Unix epoch:
//
//   - the six 4-hour periods of the most recent day,
//   - the seven days of the most recent week,
//   - and all the weeks previous to that.
//
// Rows from different periods never share an in-memory tablet, and tablets
// from different periods are never merged, bounding both the number of
// tablets a query must open and the fraction of scanned rows that fall
// outside a query's time bounds.
package period

import "littletable/internal/clock"

// Granularity classifies how fine a period is.
type Granularity uint8

// The three granularities, finest first.
const (
	FourHour Granularity = iota
	Day
	Week
)

// String names the granularity.
func (g Granularity) String() string {
	switch g {
	case FourHour:
		return "4h"
	case Day:
		return "day"
	default:
		return "week"
	}
}

// Length returns the period length in microseconds.
func (g Granularity) Length() int64 {
	switch g {
	case FourHour:
		return 4 * clock.Hour
	case Day:
		return clock.Day
	default:
		return clock.Week
	}
}

// Period is a half-open time interval [Start, End) aligned to an even
// multiple of its granularity from the Unix epoch.
type Period struct {
	Start, End int64
	Gran       Granularity
}

// Contains reports whether ts falls inside the period.
func (p Period) Contains(ts int64) bool { return ts >= p.Start && ts < p.End }

// floorTo rounds ts down to an even multiple of unit from the epoch,
// handling negative timestamps (pre-1970) correctly.
func floorTo(ts, unit int64) int64 {
	q := ts / unit
	if ts%unit < 0 {
		q--
	}
	return q * unit
}

// For returns the period containing ts, as seen at time now. The boundaries
// move with now: the "most recent day" is the epoch-aligned day containing
// now, and likewise for the week, matching the paper's even-interval rule.
// Timestamps in the future (clients may insert them, §3.1) bin at 4-hour
// granularity so they stay finely clustered until they age.
func For(ts, now int64) Period {
	dayStart := floorTo(now, clock.Day)
	weekStart := floorTo(now, clock.Week)
	switch {
	case ts >= dayStart:
		s := floorTo(ts, 4*clock.Hour)
		return Period{Start: s, End: s + 4*clock.Hour, Gran: FourHour}
	case ts >= weekStart:
		s := floorTo(ts, clock.Day)
		return Period{Start: s, End: s + clock.Day, Gran: Day}
	default:
		s := floorTo(ts, clock.Week)
		return Period{Start: s, End: s + clock.Week, Gran: Week}
	}
}

// SamePeriod reports whether a and b fall in the same period at time now.
func SamePeriod(a, b, now int64) bool {
	pa := For(a, now)
	return pa.Contains(b)
}

// Covering returns the distinct periods that intersect [lo, hi] at time
// now, oldest first. It is used to plan queries and to group tablets when
// walking backwards for latest-row lookups.
func Covering(lo, hi, now int64) []Period {
	if hi < lo {
		return nil
	}
	var out []Period
	p := For(lo, now)
	for {
		out = append(out, p)
		if p.End > hi {
			return out
		}
		p = For(p.End, now)
	}
}

// MergeDelayFraction returns a deterministic pseudorandom fraction in
// [0, 1) derived from seed. When tablets from a smaller period roll over
// into the next larger one, each table delays its merge by this fraction of
// the larger period, spreading the merge load across tables (§3.4.2).
func MergeDelayFraction(seed uint64) float64 {
	// splitmix64 finalizer.
	z := seed + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return float64(z>>11) / float64(1<<53)
}
