package period

import (
	"testing"
	"testing/quick"

	"littletable/internal/clock"
)

// now: an arbitrary instant chosen to fall mid-day and mid-week, so that
// all three granularities appear in a one-week lookback. Epoch-aligned
// weeks start on Thursday (1970-01-01); the tests rely only on epoch
// arithmetic, never on calendar weekdays.
const now = 1_782_018_420 * clock.Second // ≈ 2026-06-21, ~05:07 into the day

func TestGranularityLength(t *testing.T) {
	if FourHour.Length() != 4*clock.Hour {
		t.Error("FourHour length")
	}
	if Day.Length() != clock.Day {
		t.Error("Day length")
	}
	if Week.Length() != clock.Week {
		t.Error("Week length")
	}
	if FourHour.String() != "4h" || Day.String() != "day" || Week.String() != "week" {
		t.Error("granularity names")
	}
}

func TestForRecentDay(t *testing.T) {
	p := For(now, now)
	if p.Gran != FourHour {
		t.Fatalf("period for now has granularity %v", p.Gran)
	}
	if p.End-p.Start != 4*clock.Hour {
		t.Errorf("period length %d", p.End-p.Start)
	}
	if p.Start%(4*clock.Hour) != 0 {
		t.Error("period not epoch-aligned")
	}
	if !p.Contains(now) {
		t.Error("period does not contain its own timestamp")
	}
}

func TestForRecentWeek(t *testing.T) {
	dayStart := (now / clock.Day) * clock.Day
	weekStart := (now / clock.Week) * clock.Week
	if weekStart >= dayStart {
		t.Skip("now falls on the first day of an epoch week; pick a different constant")
	}
	ts := dayStart - clock.Hour // yesterday
	p := For(ts, now)
	if p.Gran != Day {
		t.Fatalf("yesterday has granularity %v", p.Gran)
	}
	if p.Start%clock.Day != 0 || p.End-p.Start != clock.Day {
		t.Errorf("day period misaligned: [%d, %d)", p.Start, p.End)
	}
}

func TestForOldWeeks(t *testing.T) {
	ts := now - 30*clock.Day
	p := For(ts, now)
	if p.Gran != Week {
		t.Fatalf("a month ago has granularity %v", p.Gran)
	}
	if p.Start%clock.Week != 0 || p.End-p.Start != clock.Week {
		t.Errorf("week period misaligned: [%d, %d)", p.Start, p.End)
	}
}

func TestForFuture(t *testing.T) {
	ts := now + 3*clock.Day
	p := For(ts, now)
	if p.Gran != FourHour {
		t.Errorf("future timestamps should bin at 4h, got %v", p.Gran)
	}
	if !p.Contains(ts) {
		t.Error("future period does not contain its timestamp")
	}
}

func TestForNegativeTimestamps(t *testing.T) {
	ts := int64(-3 * clock.Day)
	p := For(ts, now)
	if !p.Contains(ts) {
		t.Errorf("pre-epoch period [%d,%d) does not contain %d", p.Start, p.End, ts)
	}
	if p.Start%clock.Week != 0 {
		t.Error("pre-epoch period not week-aligned")
	}
	if p.Start > ts {
		t.Error("floor rounded toward zero instead of down")
	}
}

func TestContainsProperty(t *testing.T) {
	f := func(tsRaw int64, offset uint32) bool {
		ts := tsRaw % (100 * 365 * clock.Day) // keep within ±100 years
		n := now + int64(offset%uint32(clock.Day*30/clock.Second))*clock.Second
		p := For(ts, n)
		if !p.Contains(ts) {
			return false
		}
		// All timestamps within the period map back to the same period.
		mid := p.Start + (p.End-p.Start)/2
		q := For(mid, n)
		return q == p
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestPeriodsPartitionTime(t *testing.T) {
	// Walk across 10 days around now in 1-hour steps: consecutive periods
	// must tile the line exactly (disjoint, adjacent, no gaps).
	start := now - 9*clock.Day
	prev := For(start, now)
	for ts := start; ts < now+clock.Day; ts += clock.Hour {
		p := For(ts, now)
		if p == prev {
			continue
		}
		if p.Start != prev.End {
			t.Fatalf("gap or overlap: prev [%d,%d) next [%d,%d)", prev.Start, prev.End, p.Start, p.End)
		}
		prev = p
	}
}

func TestGranularityMonotone(t *testing.T) {
	// Going back in time, granularity must never get finer.
	rank := map[Granularity]int{FourHour: 0, Day: 1, Week: 2}
	last := -1
	for back := int64(0); back < 30*clock.Day; back += 2 * clock.Hour {
		p := For(now-back, now)
		r := rank[p.Gran]
		if r < last {
			t.Fatalf("granularity got finer going back: %v at -%dh", p.Gran, back/clock.Hour)
		}
		if r > last {
			last = r
		}
	}
	if last != rank[Week] {
		t.Error("never reached week granularity")
	}
}

func TestSamePeriod(t *testing.T) {
	p := For(now, now)
	if !SamePeriod(p.Start, p.End-1, now) {
		t.Error("endpoints of one period not SamePeriod")
	}
	if SamePeriod(p.Start, p.End, now) {
		t.Error("adjacent periods reported as same")
	}
}

func TestCovering(t *testing.T) {
	lo := now - 8*clock.Day
	hi := now
	ps := Covering(lo, hi, now)
	if len(ps) == 0 {
		t.Fatal("no covering periods")
	}
	if !ps[0].Contains(lo) {
		t.Error("first period misses lo")
	}
	if !ps[len(ps)-1].Contains(hi) {
		t.Error("last period misses hi")
	}
	for i := 1; i < len(ps); i++ {
		if ps[i].Start != ps[i-1].End {
			t.Fatalf("covering not contiguous at %d", i)
		}
	}
	// At minimum: one week period, the days between week and day start,
	// and the 4h periods of today. Sanity-bound the total.
	if len(ps) < 4 || len(ps) > 60 {
		t.Errorf("unexpected covering size %d", len(ps))
	}
	// All three granularities must appear for an 8-day lookback from a
	// mid-day, mid-week now.
	seen := map[Granularity]bool{}
	for _, p := range ps {
		seen[p.Gran] = true
	}
	if !seen[FourHour] || !seen[Day] || !seen[Week] {
		t.Errorf("granularities seen: %v", seen)
	}
}

func TestCoveringEmpty(t *testing.T) {
	if ps := Covering(10, 5, now); ps != nil {
		t.Errorf("inverted range returned %d periods", len(ps))
	}
}

func TestCoveringSingle(t *testing.T) {
	ps := Covering(now, now, now)
	if len(ps) != 1 {
		t.Errorf("point range covered by %d periods", len(ps))
	}
}

func TestMergeDelayFraction(t *testing.T) {
	seen := map[uint64]float64{}
	for seed := uint64(0); seed < 1000; seed++ {
		f := MergeDelayFraction(seed)
		if f < 0 || f >= 1 {
			t.Fatalf("fraction %v out of [0,1)", f)
		}
		seen[seed] = f
	}
	// Deterministic.
	if MergeDelayFraction(42) != seen[42] {
		t.Error("not deterministic")
	}
	// Roughly uniform: mean should be near 0.5.
	sum := 0.0
	for _, f := range seen {
		sum += f
	}
	mean := sum / float64(len(seen))
	if mean < 0.45 || mean > 0.55 {
		t.Errorf("mean fraction %.3f; poor spread defeats the point of the delay", mean)
	}
}
