// Package prodsim synthesizes the production-fleet characteristics behind
// the paper's §5.2 measurements. The real inputs — several hundred shards,
// 320 TB of LittleTable data, 270 tables per shard — are Meraki-internal,
// so this package generates shard and table populations calibrated to the
// quantiles the paper reports, and the ltbench harness renders the same
// CDFs (Figures 7, 8, and 10). Figure 9 (rows scanned / rows returned) is
// measured, not synthesized: ltbench replays a Dashboard-like query mix
// against real tables built by this package's workload spec.
package prodsim

import (
	"math"
	"math/rand"
	"sort"

	"littletable/internal/clock"
)

// Shard is one Dashboard shard's database sizes (Figure 7).
type Shard struct {
	LittleTableBytes int64
	PostgresBytes    int64
}

// Paper-reported calibration targets (§5.2.1, January 4, 2017).
const (
	// TotalLittleTableBytes across the fleet: 320 TB.
	TotalLittleTableBytes = 320e12
	// MaxLittleTableBytes on one shard: 6.7 TB.
	MaxLittleTableBytes = 6.7e12
	// TotalPostgresBytes: 14 TB.
	TotalPostgresBytes = 14e12
	// MaxPostgresBytes: 341 GB.
	MaxPostgresBytes = 341e9
	// DefaultShardCount: "several hundred LittleTable servers".
	DefaultShardCount = 250
)

// Shards generates n shards whose LittleTable and PostgreSQL sizes follow
// right-skewed (lognormal) distributions rescaled to hit the paper's
// totals and maxima: most shards are modest, a few are huge, and the
// LittleTable:PostgreSQL ratio is ~20:1, "roughly corresponding to the
// ratio of disk to main memory on our servers" (§5.2.1).
func Shards(n int, seed int64) []Shard {
	if n <= 0 {
		n = DefaultShardCount
	}
	rng := rand.New(rand.NewSource(seed))
	lt := lognormalSamples(rng, n, 1.0)
	pg := make([]float64, n)
	for i := range pg {
		// PostgreSQL size correlates with LittleTable size (both driven by
		// device count) with independent noise.
		pg[i] = lt[i] * math.Exp(rng.NormFloat64()*0.4)
	}
	scaleTo(lt, TotalLittleTableBytes, MaxLittleTableBytes)
	scaleTo(pg, TotalPostgresBytes, MaxPostgresBytes)
	out := make([]Shard, n)
	for i := range out {
		out[i] = Shard{LittleTableBytes: int64(lt[i]), PostgresBytes: int64(pg[i])}
	}
	return out
}

// lognormalSamples draws n samples with the given sigma (mu 0).
func lognormalSamples(rng *rand.Rand, n int, sigma float64) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = math.Exp(rng.NormFloat64() * sigma)
	}
	return out
}

// scaleTo rescales samples so they sum to total, then soft-caps the
// maximum at max by clamping and redistributing proportionally.
func scaleTo(xs []float64, total, max float64) {
	var sum float64
	for _, x := range xs {
		sum += x
	}
	f := total / sum
	for i := range xs {
		xs[i] *= f
	}
	// Clamp to max and redistribute the excess over the rest, iterating
	// until no redistribution pushes another sample past the cap.
	for iter := 0; iter < 16; iter++ {
		excess := 0.0
		var under float64
		for i := range xs {
			if xs[i] > max {
				excess += xs[i] - max
				xs[i] = max
			} else {
				under += xs[i]
			}
		}
		if excess == 0 || under == 0 {
			return
		}
		g := (under + excess) / under
		grew := false
		for i := range xs {
			if xs[i] < max {
				xs[i] *= g
				grew = true
			}
		}
		if !grew {
			return
		}
	}
	for i := range xs {
		if xs[i] > max {
			xs[i] = max
		}
	}
}

// TableSpec describes one production table (Figure 8's key/value sizes,
// Figure 10's TTLs, §5.2.4's batch sizes).
type TableSpec struct {
	Name       string
	KeyBytes   int
	ValueBytes int
	TTL        int64
	BatchRows  int
	SizeBytes  int64
}

// Paper-reported table-population targets (§5.2.2).
const (
	// TablesPerShard: "approximately 270 LittleTable tables on each
	// production shard".
	TablesPerShard = 270
	// MedianTableBytes: "the median table size is about 875 MB compressed".
	MedianTableBytes = 875 << 20
	// MaxTableBytes: "the largest table ... at 704 GB compressed".
	MaxTableBytes = 704 << 30
	// MedianKeyBytes / MaxKeyBytes: "the median key size is only 45 bytes
	// and all keys are less than 128 bytes".
	MedianKeyBytes = 45
	MaxKeyBytes    = 127
	// MedianValueBytes: "the median value is only 61 bytes"; 91% of tables
	// average ≤ 1 kB; sketches reach 75 kB.
	MedianValueBytes = 61
	MaxValueBytes    = 75 << 10
	// MeanRowBytes: "the average row is 791 bytes".
	MeanRowBytes = 791
)

// Tables generates a shard's table population.
func Tables(n int, seed int64) []TableSpec {
	if n <= 0 {
		n = TablesPerShard
	}
	rng := rand.New(rand.NewSource(seed))
	out := make([]TableSpec, n)
	for i := range out {
		// Keys: lognormal around the 45-byte median, hard-capped at 127.
		kb := int(float64(MedianKeyBytes) * math.Exp(rng.NormFloat64()*0.35))
		if kb < 12 {
			kb = 12 // network + device + ts is already 24 bytes
		}
		if kb > MaxKeyBytes {
			kb = MaxKeyBytes
		}
		// Values: lognormal around 61 B; a sketch-storing minority reaches
		// tens of kB (the paper's HLL blobs).
		var vb int
		if rng.Float64() < 0.03 {
			vb = 8<<10 + rng.Intn(MaxValueBytes-8<<10)
		} else {
			vb = int(float64(MedianValueBytes) * math.Exp(rng.NormFloat64()*1.1))
			if vb < 8 {
				vb = 8
			}
			if vb > 4<<10 {
				vb = 4 << 10
			}
		}
		// Table sizes: lognormal around the 875 MB median, capped at 704 GB.
		sz := float64(MedianTableBytes) * math.Exp(rng.NormFloat64()*1.8)
		if sz > MaxTableBytes {
			sz = MaxTableBytes
		}
		out[i] = TableSpec{
			Name:       tableName(i),
			KeyBytes:   kb,
			ValueBytes: vb,
			TTL:        sampleTTL(rng),
			BatchRows:  sampleBatch(rng),
			SizeBytes:  int64(sz),
		}
	}
	return out
}

func tableName(i int) string {
	kinds := []string{"usage", "events", "clients", "motion", "rollup", "latency", "airmarshal", "dhcp"}
	return kinds[i%len(kinds)] + "_" + string(rune('a'+i/len(kinds)%26)) + string(rune('0'+i%10))
}

// sampleTTL draws from Figure 10's dashed line: most tables retain a year
// or longer, removing old rows "only when limited by the available disk
// space".
func sampleTTL(rng *rand.Rand) int64 {
	u := rng.Float64()
	switch {
	case u < 0.05:
		return 7 * clock.Day
	case u < 0.13:
		return 30 * clock.Day
	case u < 0.25:
		return 90 * clock.Day
	case u < 0.38:
		return 183 * clock.Day
	case u < 0.70:
		return 396 * clock.Day // 13 months
	default:
		return 792 * clock.Day // 26 months
	}
}

// sampleBatch draws from §5.2.4: half of tables average ≥128 rows/insert,
// the top 20% over 6,000, the bottom 20% a single row.
func sampleBatch(rng *rand.Rand) int {
	u := rng.Float64()
	switch {
	case u < 0.20:
		return 1
	case u < 0.50:
		return 8 + rng.Intn(120)
	case u < 0.80:
		return 128 + rng.Intn(2000)
	default:
		return 6000 + rng.Intn(20000)
	}
}

// LookbackSample draws one query's lookback duration from Figure 10's
// solid line: anthropocentric ranges, over 90% within the most recent
// week, with a long forensic tail.
func LookbackSample(rng *rand.Rand) int64 {
	u := rng.Float64()
	switch {
	case u < 0.30:
		return 2 * clock.Hour
	case u < 0.55:
		return clock.Day
	case u < 0.75:
		return 3 * clock.Day
	case u < 0.92:
		return clock.Week
	case u < 0.96:
		return 30 * clock.Day
	case u < 0.99:
		return 90 * clock.Day
	default:
		return 396 * clock.Day
	}
}

// CDF sorts values and returns (sorted values, cumulative fraction at each
// value) — the rendering primitive for Figures 7, 8, and 10.
func CDF(values []float64) (xs, fs []float64) {
	xs = append([]float64(nil), values...)
	sort.Float64s(xs)
	fs = make([]float64, len(xs))
	for i := range xs {
		fs[i] = float64(i+1) / float64(len(xs))
	}
	return xs, fs
}

// Quantile returns the q-quantile (0..1) of values (unsorted input).
func Quantile(values []float64, q float64) float64 {
	if len(values) == 0 {
		return 0
	}
	xs := append([]float64(nil), values...)
	sort.Float64s(xs)
	i := int(q * float64(len(xs)-1))
	return xs[i]
}
