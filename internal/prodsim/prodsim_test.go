package prodsim

import (
	"math/rand"
	"testing"

	"littletable/internal/clock"
)

func TestShardsCalibration(t *testing.T) {
	shards := Shards(DefaultShardCount, 1)
	if len(shards) != DefaultShardCount {
		t.Fatalf("count = %d", len(shards))
	}
	var ltTotal, pgTotal, ltMax, pgMax float64
	for _, s := range shards {
		ltTotal += float64(s.LittleTableBytes)
		pgTotal += float64(s.PostgresBytes)
		if float64(s.LittleTableBytes) > ltMax {
			ltMax = float64(s.LittleTableBytes)
		}
		if float64(s.PostgresBytes) > pgMax {
			pgMax = float64(s.PostgresBytes)
		}
	}
	// Totals within 15% of the paper's 320 TB / 14 TB.
	if ltTotal < 0.85*TotalLittleTableBytes || ltTotal > 1.15*TotalLittleTableBytes {
		t.Errorf("LittleTable total %.1f TB, want ≈320", ltTotal/1e12)
	}
	if pgTotal < 0.85*TotalPostgresBytes || pgTotal > 1.15*TotalPostgresBytes {
		t.Errorf("PostgreSQL total %.1f TB, want ≈14", pgTotal/1e12)
	}
	// Maxima bounded by the paper's 6.7 TB / 341 GB.
	if ltMax > MaxLittleTableBytes*1.01 {
		t.Errorf("LittleTable max %.2f TB exceeds 6.7", ltMax/1e12)
	}
	if pgMax > MaxPostgresBytes*1.01 {
		t.Errorf("PostgreSQL max %.1f GB exceeds 341", pgMax/1e9)
	}
	// The ~20:1 ratio (§5.2.1).
	ratio := ltTotal / pgTotal
	if ratio < 15 || ratio > 30 {
		t.Errorf("LT:PG ratio %.1f, want ≈20", ratio)
	}
}

func TestShardsDeterministic(t *testing.T) {
	a := Shards(50, 7)
	b := Shards(50, 7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed, different shards")
		}
	}
}

func TestTablesCalibration(t *testing.T) {
	tables := Tables(TablesPerShard, 2)
	if len(tables) != TablesPerShard {
		t.Fatalf("count = %d", len(tables))
	}
	keys := make([]float64, len(tables))
	vals := make([]float64, len(tables))
	under1k := 0
	for i, ts := range tables {
		keys[i] = float64(ts.KeyBytes)
		vals[i] = float64(ts.ValueBytes)
		if ts.KeyBytes >= 128 {
			t.Errorf("key %d bytes ≥ 128 (paper: all keys < 128)", ts.KeyBytes)
		}
		if ts.ValueBytes > MaxValueBytes {
			t.Errorf("value %d bytes > 75 kB", ts.ValueBytes)
		}
		if ts.ValueBytes <= 1024 {
			under1k++
		}
		if ts.TTL <= 0 || ts.BatchRows <= 0 || ts.SizeBytes <= 0 {
			t.Errorf("degenerate spec: %+v", ts)
		}
	}
	// Median key ≈ 45 B (±40%), median value ≈ 61 B (±60%).
	mk := Quantile(keys, 0.5)
	if mk < 27 || mk > 63 {
		t.Errorf("median key %.0f B, want ≈45", mk)
	}
	mv := Quantile(vals, 0.5)
	if mv < 25 || mv > 100 {
		t.Errorf("median value %.0f B, want ≈61", mv)
	}
	// "91% of LittleTable tables have an average value size of 1 kB or
	// less" — allow ±8 points.
	frac := float64(under1k) / float64(len(tables))
	if frac < 0.83 || frac > 0.99 {
		t.Errorf("≤1kB fraction %.2f, want ≈0.91", frac)
	}
}

func TestTTLDistribution(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := 10000
	yearPlus := 0
	for i := 0; i < n; i++ {
		ttl := sampleTTL(rng)
		if ttl >= 365*clock.Day {
			yearPlus++
		}
	}
	// Figure 10: "Dashboard is able to retain data in most tables for a
	// year or longer".
	frac := float64(yearPlus) / float64(n)
	if frac < 0.5 {
		t.Errorf("year-plus TTL fraction %.2f, want majority", frac)
	}
}

func TestLookbackDistribution(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	n := 10000
	withinWeek := 0
	for i := 0; i < n; i++ {
		lb := LookbackSample(rng)
		if lb <= clock.Week {
			withinWeek++
		}
	}
	// Figure 10: "over 90% of requests are for data from the most recent
	// week".
	frac := float64(withinWeek) / float64(n)
	if frac < 0.88 || frac > 0.97 {
		t.Errorf("within-week fraction %.3f, want ≈0.92", frac)
	}
}

func TestCDF(t *testing.T) {
	xs, fs := CDF([]float64{3, 1, 2})
	if xs[0] != 1 || xs[2] != 3 {
		t.Error("CDF not sorted")
	}
	if fs[0] != 1.0/3 || fs[2] != 1.0 {
		t.Errorf("fractions: %v", fs)
	}
}

func TestQuantile(t *testing.T) {
	if Quantile(nil, 0.5) != 0 {
		t.Error("empty quantile")
	}
	xs := []float64{10, 20, 30, 40, 50}
	if Quantile(xs, 0) != 10 || Quantile(xs, 1) != 50 || Quantile(xs, 0.5) != 30 {
		t.Error("quantiles wrong")
	}
}
