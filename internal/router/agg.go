package router

import (
	"context"
	"time"

	"littletable/internal/agg"
	"littletable/internal/client"
	"littletable/internal/wire"
)

// handleAggQuery fans an aggregation query out to every shard and merges
// the partial aggregates. Like scatter, an aggregate must be complete to
// be correct — a missing shard silently zeroes its tables' contribution —
// so any down shard refuses the whole request. The combined Groups are
// recomputed here from the deduplicated per-table sections rather than
// merged from the shards' combined views: mid-migration a table can
// report from two shards, and aggregate states cannot be subtracted, so
// dedup has to happen at table granularity before the cross-table merge.
func (r *Router) handleAggQuery(wc *wire.Conn, payload []byte) error {
	m, err := wire.DecodeAggQuery(payload)
	if err != nil {
		return r.sendErr(wc, err)
	}
	if !r.limiter.allow(tenantOf(m.Prefix), time.Now()) {
		r.stats.RateLimited.Add(1)
		return r.sendOverloaded(wc, "router: tenant rate limit exceeded; back off and retry")
	}
	up, downShards := r.upShards()
	if len(downShards) > 0 {
		return r.sendOverloaded(wc, "router: aggregation with shard "+downShards[0].addr+" down; back off and retry")
	}
	r.stats.ScatterFanout.Add(int64(len(up)))
	r.stats.RoutedQueries.Add(1)
	// The router always needs table granularity from the shards —
	// migration dedup happens per table — even when the client asked for
	// merged groups only.
	wantPartials := m.WantPartials
	m.WantPartials = true
	results := make([]*wire.AggResult, len(up))
	idx := make(map[*shard]int, len(up))
	for i, sh := range up {
		idx[sh] = i
	}
	err = r.fanOut(r.baseCtx, up, func(ctx context.Context, sh *shard, cl *client.Client) error {
		res, err := cl.AggQuery(ctx, m)
		if err != nil {
			return err
		}
		results[idx[sh]] = res
		return nil
	})
	if err != nil {
		return r.sendErr(wc, err)
	}
	merged := &wire.AggResult{Spec: m.Spec}
	lists := make([][]wire.AggTablePartial, len(up))
	for i, res := range results {
		merged.Truncated = merged.Truncated || res.Truncated
		merged.RowsFolded += res.RowsFolded
		lists[i] = res.Tables
	}
	merged.Tables = mergeSections(r, up, lists, func(sec wire.AggTablePartial) string { return sec.Table })
	if m.MaxTables > 0 && len(merged.Tables) > int(m.MaxTables) {
		merged.Tables = merged.Tables[:m.MaxTables]
		merged.Truncated = true
	}
	for _, sec := range merged.Tables {
		merged.Groups = agg.MergeGroups(m.Spec, merged.Groups, sec.Groups)
	}
	if !wantPartials {
		merged.Tables = nil
	}
	return wc.WriteMsg(wire.MsgAggResult, merged.Encode())
}
