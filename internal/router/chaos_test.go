package router

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"littletable/internal/client"
	"littletable/internal/netfault"
	"littletable/internal/schema"
	"littletable/internal/wire"
)

// chaosSeed follows the LTNETFAULT_SEED convention shared with the
// client chaos suite and the crash harness, so the CI matrix replays.
func chaosSeed() int64 {
	if v := os.Getenv("LTNETFAULT_SEED"); v != "" {
		if n, err := strconv.ParseInt(v, 10, 64); err == nil {
			return n
		}
	}
	return 1
}

// chaosProxy fronts addr with a fault-injecting proxy; on failure the
// recorded fault script lands in LTNETFAULT_ARTIFACT for replay.
func chaosProxy(t *testing.T, name, addr string, cfg netfault.Config) *netfault.Proxy {
	t.Helper()
	cfg.Seed = chaosSeed()
	p, err := netfault.New(addr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if t.Failed() {
			if dir := os.Getenv("LTNETFAULT_ARTIFACT"); dir != "" {
				if err := os.MkdirAll(dir, 0o755); err == nil {
					fname := strings.ReplaceAll(t.Name(), "/", "_") + "." + name + ".faults.txt"
					header := fmt.Sprintf("seed %d\n", cfg.Seed)
					os.WriteFile(filepath.Join(dir, fname), []byte(header+p.Script()), 0o644)
				}
			}
		}
		p.Close()
	})
	return p
}

// typedChaosError mirrors the client chaos suite's contract: under
// faults every failure must be one of the sanctioned typed errors.
func typedChaosError(err error) bool {
	var re *client.RemoteError
	return errors.Is(err, client.ErrDisconnected) ||
		errors.Is(err, client.ErrOverloaded) ||
		errors.Is(err, client.ErrClientClosed) ||
		errors.Is(err, context.DeadlineExceeded) ||
		errors.Is(err, wire.ErrCorrupt) ||
		errors.As(err, &re)
}

func chaosClientOpts(seedOffset int64) client.Options {
	return client.Options{
		PoolSize:       2,
		DialTimeout:    2 * time.Second,
		RequestTimeout: 2 * time.Second,
		RetryBaseDelay: 2 * time.Millisecond,
		RetryMaxDelay:  50 * time.Millisecond,
		JitterSeed:     chaosSeed() + seedOffset,
	}
}

// TestClusterChaosNoAckedInsertLost is the cluster-level §4.1 contract:
// writers insert unique rows through the router into a 3-shard topology
// whose shard links drop, reset, and truncate; mid-load one shard is
// gracefully restarted (drain, flush, new process at a new address
// behind the same proxy) and one table is live-migrated between shards.
// Whatever the network does, every insert the router acknowledged must
// be readable from some shard afterwards, and every failure must be a
// typed error.
func TestClusterChaosNoAckedInsertLost(t *testing.T) {
	shards := []*testShard{startShard(t), startShard(t), startShard(t)}
	proxies := make([]*netfault.Proxy, len(shards))
	proxyAddrs := make([]*testShard, len(shards)) // shadow structs with proxy addrs
	cfg := netfault.Config{DropRate: 0.01, ResetRate: 0.01, PartialRate: 0.005}
	for i, sh := range shards {
		proxies[i] = chaosProxy(t, fmt.Sprintf("shard%d", i), sh.addr, cfg)
		proxyAddrs[i] = &testShard{addr: proxies[i].Addr()}
	}
	r, raddr := startRouter(t, Options{
		ProbeInterval: 50 * time.Millisecond,
		Client:        chaosClientOpts(900),
	}, proxyAddrs...)

	// Table setup through the router, with retries against the fault storm.
	const tables = 4
	admin, err := client.DialContext(context.Background(), raddr, chaosClientOpts(800))
	if err != nil {
		t.Fatal(err)
	}
	defer admin.Close()
	for i := 0; i < tables; i++ {
		name := fmt.Sprintf("cust%d_usage", i)
		deadline := time.Now().Add(10 * time.Second)
		for {
			err := admin.CreateTable(name, testSchema(), 0)
			if err == nil {
				break
			}
			var re *client.RemoteError
			if errors.As(err, &re) && strings.Contains(re.Msg, "exists") {
				break // an earlier attempt landed; the ack was lost to the storm
			}
			if !typedChaosError(err) {
				t.Fatalf("create %s: untyped error: %v", name, err)
			}
			if time.Now().After(deadline) {
				t.Fatalf("create %s never succeeded: %v", name, err)
			}
			time.Sleep(10 * time.Millisecond)
		}
	}

	// Writers: unique keys per writer, acked set recorded under lock.
	const writers = 4
	type key struct{ table string; k int64 }
	var mu sync.Mutex
	acked := map[key]bool{}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	errCh := make(chan error, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int64) {
			defer wg.Done()
			table := fmt.Sprintf("cust%d_usage", w%tables)
			c, err := client.DialContext(context.Background(), raddr, chaosClientOpts(w))
			if err != nil {
				errCh <- fmt.Errorf("writer %d dial router: %w", w, err)
				return
			}
			defer c.Close()
			tab, err := c.OpenTable(table)
			if err != nil {
				if !typedChaosError(err) {
					errCh <- fmt.Errorf("writer %d open: %w", w, err)
				}
				return
			}
			// Cap well below the scatter per-table row limit (16384) so the
			// final verification scan sees every row in one response.
			for seq := int64(0); seq < 8000; seq++ {
				select {
				case <-stop:
					return
				default:
				}
				k := w*1_000_000 + seq
				err := tab.InsertNow([]schema.Row{row(k, 1_000_000+seq)})
				if err == nil {
					mu.Lock()
					acked[key{table, k}] = true
					mu.Unlock()
					continue
				}
				if !typedChaosError(err) {
					errCh <- fmt.Errorf("writer %d seq %d: untyped error: %w", w, seq, err)
					return
				}
			}
		}(int64(w))
	}

	time.Sleep(150 * time.Millisecond) // build load

	// Graceful shard restart mid-load: drain in-flight (acked requests
	// complete), flush (acked rows become durable), close, and revive at a
	// new address behind the same proxy — the §2.3.4 restart, clustered.
	victim := shards[1]
	sctx, scancel := context.WithTimeout(context.Background(), 10*time.Second)
	if err := victim.srv.Drain(sctx); err != nil {
		t.Errorf("victim drain: %v", err)
	}
	scancel()
	// Drain, not Shutdown: flush must run between the last acked request
	// and table close, or the memtable rows vanish with the process.
	if err := victim.srv.FlushAllTables(); err != nil {
		t.Fatalf("victim flush: %v", err)
	}
	victim.srv.Close()
	revived := startShardAt(t, victim.root, "127.0.0.1:0")
	shards[1] = revived
	proxies[1].SetTarget(revived.addr)
	proxies[1].CutAll() // sever half-open conns so pools redial promptly

	// Wait for the prober to see the revived shard.
	deadline := time.Now().Add(10 * time.Second)
	for r.shards[1].state.Load() != shardUp {
		if time.Now().After(deadline) {
			t.Fatal("revived shard never probed back up")
		}
		time.Sleep(20 * time.Millisecond)
	}

	// Live migration under fire: move cust0_usage to whichever shard
	// doesn't own it. Attempts may fail typed under faults; it must
	// eventually succeed and never lose data either way.
	const migTable = "cust0_usage"
	srcAddr, _ := r.Placement(migTable)
	targetAddr := ""
	for _, ps := range proxyAddrs {
		if ps.addr != srcAddr {
			targetAddr = ps.addr
			break
		}
	}
	migrated := false
	for attempt := 0; attempt < 10 && !migrated; attempt++ {
		err := r.Migrate(context.Background(), migTable, targetAddr)
		if err == nil {
			migrated = true
			break
		}
		if !typedChaosError(err) && !strings.Contains(err.Error(), "router:") {
			t.Fatalf("migrate attempt %d: untyped error: %v", attempt, err)
		}
		time.Sleep(50 * time.Millisecond)
	}
	if !migrated {
		t.Errorf("migration never completed in 10 attempts (seed %d)", chaosSeed())
	}

	time.Sleep(100 * time.Millisecond) // writers keep hitting the new topology
	close(stop)
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}

	// Verify over clean paths: dial each shard directly (no proxy) and
	// union each table's rows across shards — a mid-failed migration may
	// leave a table on two shards, which is fine; losing an acked row is
	// not.
	present := map[key]bool{}
	for i, sh := range shards {
		c, err := client.DialContext(context.Background(), sh.addr, client.Options{JitterSeed: 1})
		if err != nil {
			t.Fatalf("verify dial shard %d: %v", i, err)
		}
		res, err := c.ScatterQuery(context.Background(), &wire.ScatterQuery{Prefix: "cust", MaxTs: 1 << 62})
		if err != nil {
			t.Fatalf("verify scan shard %d: %v", i, err)
		}
		for _, sec := range res.Tables {
			for _, rw := range sec.Rows {
				present[key{sec.Table, rw[0].Int}] = true
			}
		}
		c.Close()
	}
	mu.Lock()
	lost := 0
	for k := range acked {
		if !present[k] {
			lost++
			t.Errorf("acked insert lost: table %s key %d", k.table, k.k)
		}
	}
	ackedN := len(acked)
	mu.Unlock()
	if lost > 0 {
		t.Fatalf("%d of %d acked inserts lost (seed %d)", lost, ackedN, chaosSeed())
	}
	st := r.Stats()
	t.Logf("seed %d: %d acked, migrated=%v, routed inserts=%d, shed=%d, shard-down transitions=%d",
		chaosSeed(), ackedN, migrated, st.RoutedInserts.Load(), st.RateLimited.Load(), st.ShardDown.Load())
}

// TestClusterChaosScatterFailsCleanly hammers scatter-gather reads while
// the shard links misbehave: every scatter either succeeds with sorted,
// well-formed sections or fails with a typed error — never a panic, a
// hang, or silent partial data presented as complete.
func TestClusterChaosScatterFailsCleanly(t *testing.T) {
	shards := []*testShard{startShard(t), startShard(t), startShard(t)}
	cfg := netfault.Config{DropRate: 0.02, ResetRate: 0.01, LatencyMax: 2 * time.Millisecond}
	proxyAddrs := make([]*testShard, len(shards))
	for i, sh := range shards {
		p := chaosProxy(t, fmt.Sprintf("shard%d", i), sh.addr, cfg)
		proxyAddrs[i] = &testShard{addr: p.Addr()}
	}
	_, raddr := startRouter(t, Options{
		ProbeInterval: 50 * time.Millisecond,
		Client:        chaosClientOpts(700),
	}, proxyAddrs...)

	// Seed rows directly onto the shards (setup is not under test): the
	// ring decides the owner, so insert through a fault-free router.
	cleanR, cleanAddr := startRouter(t, Options{}, shards...)
	_ = cleanR
	admin, err := client.DialContext(context.Background(), cleanAddr, client.Options{JitterSeed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer admin.Close()
	total := 0
	for i := 0; i < 6; i++ {
		name := fmt.Sprintf("acme_t%d", i)
		if err := admin.CreateTable(name, testSchema(), 0); err != nil {
			t.Fatal(err)
		}
		tab, err := admin.OpenTable(name)
		if err != nil {
			t.Fatal(err)
		}
		for k := int64(0); k < 20; k++ {
			if err := tab.InsertNow([]schema.Row{row(k, 1000+k)}); err != nil {
				t.Fatal(err)
			}
			total++
		}
	}

	const readers = 3
	var wg sync.WaitGroup
	errCh := make(chan error, readers)
	for rd := 0; rd < readers; rd++ {
		wg.Add(1)
		go func(rd int64) {
			defer wg.Done()
			c, err := client.DialContext(context.Background(), raddr, chaosClientOpts(300+rd))
			if err != nil {
				errCh <- fmt.Errorf("reader %d dial: %w", rd, err)
				return
			}
			defer c.Close()
			for i := 0; i < 25; i++ {
				res, err := c.ScatterQuery(context.Background(), &wire.ScatterQuery{Prefix: "acme_", MaxTs: 1 << 62})
				if err != nil {
					if typedChaosError(err) {
						continue
					}
					errCh <- fmt.Errorf("reader %d scatter %d: untyped error: %w", rd, i, err)
					return
				}
				// A successful scatter must be complete and ordered.
				got := 0
				for j, sec := range res.Tables {
					got += len(sec.Rows)
					if j > 0 && sec.Table <= res.Tables[j-1].Table {
						errCh <- fmt.Errorf("reader %d: unsorted scatter sections", rd)
						return
					}
				}
				if len(res.Tables) == 6 && got != total {
					errCh <- fmt.Errorf("reader %d: complete scatter returned %d rows, want %d", rd, got, total)
					return
				}
			}
		}(int64(rd))
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
}
