package router

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"littletable/internal/client"
)

// Shard health states. The router fails fast against a down shard
// instead of burning a dial timeout per request; draining shards still
// serve (the server answers until its drain deadline) but are skipped as
// migration targets.
const (
	shardUp       = int32(0)
	shardDraining = int32(1)
	shardDown     = int32(2)
)

// probeFailThreshold is how many consecutive probe failures mark a shard
// down. One flaky probe (a dropped SYN under chaos) must not down a
// healthy shard.
const probeFailThreshold = 2

// ErrShardDown is the fail-fast refusal for requests routed to a shard
// the prober currently considers dead. It maps to the wire Overloaded
// refusal: the request was NOT processed and may be retried.
var ErrShardDown = errors.New("router: shard down")

// shard is one backend server: its address, lazily dialed client pool,
// and probed health.
type shard struct {
	addr  string
	copts client.Options

	// state holds one of shardUp/shardDraining/shardDown.
	state atomic.Int32
	fails atomic.Int32

	mu     sync.Mutex
	cl     *client.Client
	closed bool
}

func newShard(addr string, copts client.Options) *shard {
	return &shard{addr: addr, copts: copts}
}

// client returns the shard's pooled client, dialing on first use. Dial
// failure leaves the shard clientless; the next call retries.
func (s *shard) client(ctx context.Context) (*client.Client, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, client.ErrClientClosed
	}
	if s.cl != nil {
		return s.cl, nil
	}
	cl, err := client.DialContext(ctx, s.addr, s.copts)
	if err != nil {
		return nil, err
	}
	s.cl = cl
	return cl, nil
}

func (s *shard) close() {
	s.mu.Lock()
	cl := s.cl
	s.cl = nil
	s.closed = true
	s.mu.Unlock()
	if cl != nil {
		cl.Close()
	}
}

// up reports whether requests should be routed to the shard at all.
func (s *shard) up() bool { return s.state.Load() != shardDown }

// probeLoop drives one shard's health state machine: a periodic
// ServerStats round-trip. Success → up (or draining when the server says
// it is shutting down); probeFailThreshold consecutive failures → down.
// The probe uses the same pool as requests, so a probe that redials
// after a restart also heals the pool.
func (r *Router) probeLoop(sh *shard) {
	defer r.wg.Done()
	t := time.NewTicker(r.opts.ProbeInterval)
	defer t.Stop()
	for {
		r.probeOnce(sh)
		select {
		case <-r.baseCtx.Done():
			return
		case <-t.C:
		}
	}
}

func (r *Router) probeOnce(sh *shard) {
	ctx, cancel := context.WithTimeout(r.baseCtx, r.opts.ProbeTimeout)
	defer cancel()
	cl, err := sh.client(ctx)
	var draining bool
	if err == nil {
		var st, serr = cl.ServerStats(ctx)
		err = serr
		if serr == nil {
			draining = st.Draining != 0
		}
	}
	if err != nil {
		if n := sh.fails.Add(1); n >= probeFailThreshold && sh.state.Load() != shardDown {
			sh.state.Store(shardDown)
			r.stats.ShardDown.Add(1)
			r.opts.Logf("router: shard %s down: %v", sh.addr, err)
		}
		return
	}
	sh.fails.Store(0)
	next := shardUp
	if draining {
		next = shardDraining
	}
	if prev := sh.state.Swap(next); prev == shardDown {
		r.opts.Logf("router: shard %s back up", sh.addr)
	}
}
