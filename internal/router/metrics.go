package router

import (
	"fmt"
	"io"
	"net/http"
)

// WriteMetrics renders the router's counters and per-shard health in the
// Prometheus text exposition format, mirroring the server's /metrics.
func (r *Router) WriteMetrics(w io.Writer) {
	st := r.statsResult()
	counters := []struct {
		name, help string
		value      int64
	}{
		{"littletable_router_routed_inserts_total", "Insert requests routed to shards", st.RoutedInserts},
		{"littletable_router_routed_queries_total", "Query requests routed to shards", st.RoutedQueries},
		{"littletable_router_scatter_fanout_total", "Per-shard requests issued by scatter-gather operations", st.ScatterFanout},
		{"littletable_router_shard_down_total", "Shard up-to-down health transitions observed", st.ShardDown},
		{"littletable_router_rate_limited_total", "Requests refused by per-tenant rate limits", st.RateLimited},
		{"littletable_router_migrations_completed_total", "Table migrations completed", st.MigrationsCompleted},
		{"littletable_router_migrated_bytes_total", "Sealed-tablet bytes shipped by migrations", st.MigratedBytes},
	}
	for _, c := range counters {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", c.name, c.help, c.name, c.name, c.value)
	}
	fmt.Fprintf(w, "# HELP littletable_router_shard_state Shard health as probed (0 up, 1 draining, 2 down)\n")
	fmt.Fprintf(w, "# TYPE littletable_router_shard_state gauge\n")
	for _, sh := range st.Shards {
		fmt.Fprintf(w, "littletable_router_shard_state{shard=%q} %d\n", sh.Addr, sh.State)
	}
}

// MetricsHandler serves /metrics and /healthz, matching the daemon's
// conventions.
func (r *Router) MetricsHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		r.WriteMetrics(w)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, req *http.Request) {
		// The router is healthy while at least one shard is reachable.
		up, _ := r.upShards()
		if len(up) == 0 {
			http.Error(w, "all shards down", http.StatusServiceUnavailable)
			return
		}
		fmt.Fprintf(w, "ok (%d/%d shards up)\n", len(up), len(r.shards))
	})
	return mux
}
