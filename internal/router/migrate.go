package router

import (
	"context"
	"errors"
	"fmt"
	"strings"

	"littletable/internal/client"
	"littletable/internal/wire"
)

// migrateChunkBytes is the fetch/install chunk size. Big enough to
// amortize round-trips, small enough to stay far under wire.MaxFrame.
const migrateChunkBytes = 1 << 20

// migrateInstallRetries is how many times one tablet's transfer restarts
// from offset 0 after a failure. MigrateInstall is never retried blind
// (a replayed chunk would corrupt the staging offset), so recovery is
// always restart-the-file.
const migrateInstallRetries = 2

// Migrate moves a table to the shard at targetAddr by shipping its
// sealed tablets — the §6 observation that immutable tablets make
// replication a file copy, applied to rebalancing. Two phases:
//
// Phase A (live): freeze-flush the source (MigrateBegin pins the sealed
// tablet set and holds maintenance, so the set only grows), create the
// table on the target, and copy every pinned tablet while the table
// keeps serving reads and writes through the router.
//
// Phase B (cutover): close the router's per-table gate and drain
// in-flight requests, refresh the manifest (a second MigrateBegin — the
// new set is a superset unless rows were deleted), copy the delta, flip
// the placement override (persisted), reopen the gate, then release the
// source's pins and drop the source table. If a delete shrank the set so
// that an already-installed tablet vanished from the manifest, the
// target copy is dropped and rebuilt from scratch under the gate — rare,
// and correctness beats speed there.
//
// The gate only covers traffic routed through this router instance;
// clients writing to the source directly during a migration race it,
// exactly as they would racing a DROP TABLE.
func (r *Router) Migrate(ctx context.Context, table, targetAddr string) error {
	ti := r.shardIndex(targetAddr)
	if ti < 0 {
		return fmt.Errorf("router: %q is not a configured shard", targetAddr)
	}
	target := r.shards[ti]
	source := r.shardFor(table)
	if source.addr == targetAddr {
		return nil // already there
	}
	if !source.up() {
		return fmt.Errorf("router: source shard %s down", source.addr)
	}
	if target.state.Load() != shardUp {
		return fmt.Errorf("router: target shard %s not up", targetAddr)
	}
	srcCl, err := source.client(ctx)
	if err != nil {
		return fmt.Errorf("router: source %s: %v", source.addr, err)
	}
	dstCl, err := target.client(ctx)
	if err != nil {
		return fmt.Errorf("router: target %s: %v", targetAddr, err)
	}

	// Phase A: copy live. The source keeps serving; maintenance is held so
	// the pinned set only grows.
	man, err := srcCl.MigrateBegin(ctx, table)
	if err != nil {
		return fmt.Errorf("router: migrate begin: %w", err)
	}
	fail := func(err error) error {
		// Release source pins and target staging on the way out; best
		// effort — EndExport is idempotent and probe-healed shards will
		// accept it later.
		if eerr := srcCl.MigrateEnd(context.WithoutCancel(ctx), table); eerr != nil {
			r.opts.Logf("router: migrate %q cleanup: %v", table, eerr)
		}
		return err
	}
	if err := recreateTable(dstCl, table, man); err != nil {
		return fail(fmt.Errorf("router: migrate create target: %w", err))
	}
	installed := make(map[string]int64, len(man.Tablets))
	var shipped int64
	for _, tab := range man.Tablets {
		n, err := r.copyTablet(ctx, srcCl, dstCl, table, tab)
		if err != nil {
			return fail(fmt.Errorf("router: migrate copy %s: %w", tab.File, err))
		}
		installed[tab.File] = tab.Bytes
		shipped += n
	}

	// Phase B: cutover. Gate the table, drain this router's in-flight
	// requests, then copy whatever arrived since phase A.
	unfreeze, err := r.freezeTable(ctx, table)
	if err != nil {
		return fail(err)
	}
	defer unfreeze()
	man2, err := srcCl.MigrateBegin(ctx, table)
	if err != nil {
		return fail(fmt.Errorf("router: migrate refresh: %w", err))
	}
	inManifest := make(map[string]int64, len(man2.Tablets))
	for _, tab := range man2.Tablets {
		inManifest[tab.File] = tab.Bytes
	}
	shrunk := false
	for file, bytes := range installed {
		if b, ok := inManifest[file]; !ok || b != bytes {
			shrunk = true
			break
		}
	}
	if shrunk {
		// A DeleteWhere removed tablets we already shipped; the installed
		// copy over-represents the table. Rebuild the target from the
		// fresh manifest under the gate.
		r.opts.Logf("router: migrate %q: source shrank; full recopy", table)
		if err := recreateTable(dstCl, table, man2); err != nil {
			return fail(fmt.Errorf("router: migrate recreate target: %w", err))
		}
		installed = make(map[string]int64, len(man2.Tablets))
		shipped = 0
	}
	for _, tab := range man2.Tablets {
		if _, done := installed[tab.File]; done {
			continue
		}
		n, err := r.copyTablet(ctx, srcCl, dstCl, table, tab)
		if err != nil {
			return fail(fmt.Errorf("router: migrate copy delta %s: %w", tab.File, err))
		}
		installed[tab.File] = tab.Bytes
		shipped += n
	}
	if err := r.setPlacement(table, targetAddr); err != nil {
		return fail(err)
	}
	unfreeze()

	// The table now lives on the target; release the source's pins and
	// drop its copy. Failures here leave a harmless orphan on the source
	// (it no longer receives traffic) — log, don't fail the migration.
	if err := srcCl.MigrateEnd(context.WithoutCancel(ctx), table); err != nil {
		r.opts.Logf("router: migrate %q: end on source: %v", table, err)
	} else if err := srcCl.DropTable(table); err != nil {
		r.opts.Logf("router: migrate %q: drop on source: %v", table, err)
	}
	r.stats.MigrationsCompleted.Add(1)
	r.stats.MigratedBytes.Add(shipped)
	r.opts.Logf("router: migrated %q %s -> %s (%d tablets, %d bytes)",
		table, source.addr, targetAddr, len(installed), shipped)
	return nil
}

// recreateTable creates table on the target from the manifest's schema,
// dropping any existing copy first (a leftover from an earlier failed
// attempt, or a namesake — either way the migrated data is authoritative).
func recreateTable(dstCl *client.Client, table string, man *wire.MigrateManifest) error {
	if err := dstCl.DropTable(table); err != nil {
		var re *client.RemoteError
		if !errors.As(err, &re) || !strings.Contains(re.Msg, "no such table") {
			return err
		}
	}
	return dstCl.CreateTable(table, man.Schema, man.TTL)
}

// copyTablet ships one pinned tablet image source→target in chunks,
// restarting the whole file (offset 0) on failure — installs are never
// blind-retried mid-file. Returns the bytes shipped (including restarts).
func (r *Router) copyTablet(ctx context.Context, srcCl, dstCl *client.Client, table string, tab wire.MigrateTabletInfo) (int64, error) {
	var shipped int64
	var lastErr error
	for attempt := 0; attempt <= migrateInstallRetries; attempt++ {
		if attempt > 0 {
			r.opts.Logf("router: migrate %q: restarting %s after %v", table, tab.File, lastErr)
		}
		var off int64
		for {
			ch, err := srcCl.MigrateFetch(ctx, table, tab.File, off, migrateChunkBytes)
			if err != nil {
				lastErr = err
				break
			}
			if ch.Total != tab.Bytes {
				return shipped, fmt.Errorf("tablet %s is %d bytes, manifest says %d", tab.File, ch.Total, tab.Bytes)
			}
			if len(ch.Data) == 0 {
				lastErr = fmt.Errorf("empty chunk at offset %d", off)
				break
			}
			last := off+int64(len(ch.Data)) == ch.Total
			err = dstCl.MigrateInstall(ctx, &wire.MigrateInstall{
				Table: table, File: tab.File, Offset: off, Total: ch.Total,
				RowCount: tab.RowCount, MinTs: tab.MinTs, MaxTs: tab.MaxTs,
				Commit: last, Data: ch.Data,
			})
			if err != nil {
				lastErr = err
				break
			}
			off += int64(len(ch.Data))
			shipped += int64(len(ch.Data))
			if last {
				return shipped, nil
			}
		}
		if ctx.Err() != nil {
			return shipped, ctx.Err()
		}
	}
	return shipped, lastErr
}
