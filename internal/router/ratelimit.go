package router

import (
	"strings"
	"sync"
	"time"
)

// tenantOf maps a table name to its tenant: the prefix before the first
// underscore, or the whole name. The deployment convention (§2.2) is one
// table per customer per data type, named <tenant>_<kind>, so the tenant
// bucket throttles a whole customer, not one of its tables.
func tenantOf(table string) string {
	if i := strings.IndexByte(table, '_'); i > 0 {
		return table[:i]
	}
	return table
}

// tenantLimiter is a per-tenant token bucket: rate tokens/second with a
// burst ceiling. A refused request gets the typed retryable Overloaded
// refusal, so well-behaved clients back off rather than drop data.
type tenantLimiter struct {
	rate  float64
	burst float64

	mu      sync.Mutex
	buckets map[string]*bucket
}

type bucket struct {
	tokens float64
	last   time.Time
}

func newTenantLimiter(rate float64, burst int) *tenantLimiter {
	if rate <= 0 {
		return nil
	}
	b := float64(burst)
	if b < 1 {
		b = rate
		if b < 1 {
			b = 1
		}
	}
	return &tenantLimiter{rate: rate, burst: b, buckets: make(map[string]*bucket)}
}

// allow spends one token from the tenant's bucket, reporting whether the
// request may proceed. A nil limiter allows everything.
func (l *tenantLimiter) allow(tenant string, now time.Time) bool {
	if l == nil {
		return true
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	bk := l.buckets[tenant]
	if bk == nil {
		bk = &bucket{tokens: l.burst, last: now}
		l.buckets[tenant] = bk
	}
	if dt := now.Sub(bk.last).Seconds(); dt > 0 {
		bk.tokens += dt * l.rate
		if bk.tokens > l.burst {
			bk.tokens = l.burst
		}
		bk.last = now
	}
	if bk.tokens < 1 {
		return false
	}
	bk.tokens--
	return true
}
