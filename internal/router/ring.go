package router

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// ring is a consistent-hash ring over shard indices. Each shard owns
// VirtualNodes points on a 64-bit circle; a table lands on the first
// point at or after its own hash. Placement depends only on the shard
// address list, so every stateless router instance computes the same
// owner for the same table — no coordination service needed (the paper's
// deployment assigns customers to shards statically, §2.2; the ring is
// that assignment made automatic).
type ring struct {
	points []ringPoint
}

type ringPoint struct {
	hash  uint64
	shard int
}

func hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	x := h.Sum64()
	// FNV alone clusters on short, similar inputs (vnode labels differ by
	// one digit); a murmur3-style finalizer restores avalanche so ring
	// points spread uniformly.
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// newRing builds the ring for the given shard addresses. Virtual nodes
// smooth the distribution: with vnodes ~128 the max/mean table load
// ratio stays near 1.
func newRing(addrs []string, vnodes int) *ring {
	r := &ring{points: make([]ringPoint, 0, len(addrs)*vnodes)}
	for i, addr := range addrs {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{
				hash:  hash64(fmt.Sprintf("%s#%d", addr, v)),
				shard: i,
			})
		}
	}
	sort.Slice(r.points, func(a, b int) bool {
		if r.points[a].hash != r.points[b].hash {
			return r.points[a].hash < r.points[b].hash
		}
		// Ties broken by shard index so every router agrees.
		return r.points[a].shard < r.points[b].shard
	})
	return r
}

// owner returns the shard index owning the table.
func (r *ring) owner(table string) int {
	h := hash64(table)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].shard
}
