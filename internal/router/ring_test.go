package router

import (
	"fmt"
	"testing"
)

func TestRingDeterministicAndBalanced(t *testing.T) {
	addrs := []string{"a:1", "b:1", "c:1", "d:1"}
	r1 := newRing(addrs, DefaultVirtualNodes)
	r2 := newRing(addrs, DefaultVirtualNodes)
	const tables = 2000
	counts := make([]int, len(addrs))
	for i := 0; i < tables; i++ {
		name := fmt.Sprintf("cust%d_usage", i)
		o := r1.owner(name)
		if o2 := r2.owner(name); o2 != o {
			t.Fatalf("ring not deterministic: %q -> %d vs %d", name, o, o2)
		}
		counts[o]++
	}
	for i, c := range counts {
		// Perfect balance is 500 each; vnodes keep shards within a loose
		// band. A hard skew means the ring is broken, not just unlucky.
		if c < tables/len(addrs)/2 || c > tables/len(addrs)*2 {
			t.Errorf("shard %d owns %d of %d tables: ring badly skewed %v", i, c, tables, counts)
		}
	}
}

func TestRingStabilityOnShardAdd(t *testing.T) {
	base := []string{"a:1", "b:1", "c:1"}
	grown := []string{"a:1", "b:1", "c:1", "d:1"}
	r1 := newRing(base, DefaultVirtualNodes)
	r2 := newRing(grown, DefaultVirtualNodes)
	const tables = 2000
	moved := 0
	for i := 0; i < tables; i++ {
		name := fmt.Sprintf("cust%d_usage", i)
		if base[r1.owner(name)] != grown[r2.owner(name)] {
			moved++
		}
	}
	// Consistent hashing moves ~1/N of keys when a shard joins; anything
	// near a full reshuffle defeats the point.
	if moved > tables/2 {
		t.Errorf("adding one shard moved %d of %d tables", moved, tables)
	}
	if moved == 0 {
		t.Error("adding a shard moved nothing; new shard owns no tables")
	}
}

func TestRingTiesAcrossShardOrder(t *testing.T) {
	// The ring hashes addresses, so shard-list order must not matter.
	a := newRing([]string{"a:1", "b:1", "c:1"}, DefaultVirtualNodes)
	b := newRing([]string{"c:1", "b:1", "a:1"}, DefaultVirtualNodes)
	addrsA := []string{"a:1", "b:1", "c:1"}
	addrsB := []string{"c:1", "b:1", "a:1"}
	for i := 0; i < 500; i++ {
		name := fmt.Sprintf("t%d", i)
		if addrsA[a.owner(name)] != addrsB[b.owner(name)] {
			t.Fatalf("table %q owner depends on shard-list order", name)
		}
	}
}
