// Package router is LittleTable's stateless routing tier. The paper
// scales by binning customers across many independent shards with no
// cross-shard coordination (§2.2); the router automates that binning. It
// places each table on a shard by consistent hashing (plus a persisted
// override map for tables that have been migrated), proxies table-scoped
// requests over pooled client connections, scatter-gathers the few
// operations that span shards, and rebalances live by shipping sealed
// tablets — the same cheap-replication trick §6 uses for backups, turned
// into migration.
//
// Routers hold no authoritative state: the ring is a pure function of
// the shard list, and the override map is a small file that can be
// rebuilt by listing each shard. Any number of router instances with the
// same configuration route identically.
package router

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"littletable/internal/client"
	"littletable/internal/vfs"
	"littletable/internal/wire"
)

// Defaults for Options zero values.
const (
	DefaultVirtualNodes       = 128
	DefaultProbeInterval      = 500 * time.Millisecond
	DefaultProbeTimeout       = 2 * time.Second
	DefaultScatterConcurrency = 8
)

// placementFile is the override map's file name under Root.
const placementFile = "placement.json"

// Options configure a Router.
type Options struct {
	// Shards are the shard server addresses. Order is irrelevant to
	// placement (the ring hashes addresses, not indices), but every
	// router instance must be configured with the same set.
	Shards []string

	// VirtualNodes per shard on the hash ring. Default 128.
	VirtualNodes int

	// Root, when non-empty, is the directory holding the persisted
	// placement override map. Empty keeps overrides in memory only.
	Root string

	// FS abstracts the filesystem for Root. Nil means the OS filesystem.
	FS vfs.FS

	// ProbeInterval is the health-probe period per shard. Default 500ms.
	ProbeInterval time.Duration

	// ProbeTimeout bounds one health probe. Default 2s.
	ProbeTimeout time.Duration

	// ScatterConcurrency bounds how many shards one scatter-gather
	// operation queries at once. Default 8.
	ScatterConcurrency int

	// RateLimit, when positive, is the per-tenant request budget in
	// requests/second for data-path operations (insert, query, delete,
	// scatter). Refused requests get the retryable Overloaded refusal.
	RateLimit float64

	// RateBurst is the token-bucket ceiling; 0 derives it from RateLimit.
	RateBurst int

	// Client tunes the per-shard connection pools.
	Client client.Options

	// ReadTimeout / WriteTimeout guard the router's own client-facing
	// connections, same semantics as the server's.
	ReadTimeout  time.Duration
	WriteTimeout time.Duration

	// MaxRequestBytes caps one inbound request frame (0 = protocol max).
	MaxRequestBytes int

	// Logf receives diagnostics. Nil discards them.
	Logf func(format string, args ...interface{})
}

func (o Options) withDefaults() Options {
	if o.VirtualNodes <= 0 {
		o.VirtualNodes = DefaultVirtualNodes
	}
	if o.ProbeInterval <= 0 {
		o.ProbeInterval = DefaultProbeInterval
	}
	if o.ProbeTimeout <= 0 {
		o.ProbeTimeout = DefaultProbeTimeout
	}
	if o.ScatterConcurrency <= 0 {
		o.ScatterConcurrency = DefaultScatterConcurrency
	}
	if o.FS == nil {
		o.FS = vfs.OsFS{}
	}
	if o.Logf == nil {
		o.Logf = func(string, ...interface{}) {}
	}
	return o
}

// Stats count the router's work; read with atomic Loads. These are
// router-local (each instance counts its own traffic).
type Stats struct {
	RoutedInserts       atomic.Int64
	RoutedQueries       atomic.Int64
	ScatterFanout       atomic.Int64
	ShardDown           atomic.Int64
	RateLimited         atomic.Int64
	MigrationsCompleted atomic.Int64
	MigratedBytes       atomic.Int64
}

// Router routes table-scoped requests to shards and fans out the rest.
type Router struct {
	opts    Options
	ring    *ring
	shards  []*shard
	limiter *tenantLimiter
	stats   Stats

	// pmu guards placement, the table→shard-address override map. A table
	// in the map lives where the map says, not where the ring says.
	// wmu serializes placement writers so the persisted file never goes
	// backwards; it is acquired before pmu and held across the save —
	// pmu itself is never held across file I/O.
	wmu       sync.Mutex
	pmu       sync.Mutex
	placement map[string]string

	// mmu guards migrating, the set of tables with a cutover gate closed,
	// and inflight, the per-table count of routed requests in progress —
	// what a cutover drains before flipping placement.
	mmu       sync.Mutex
	mcond     *sync.Cond
	migrating map[string]bool
	inflight  map[string]int

	baseCtx    context.Context
	baseCancel context.CancelFunc

	smu     sync.Mutex
	serving map[*connState]struct{}
	lis     closers

	closed atomic.Bool
	wg     sync.WaitGroup
}

type closers []interface{ Close() error }

// New builds a Router, loads any persisted placement overrides, and
// starts the health-probe loops. Shard connections are dialed lazily on
// first use.
func New(opts Options) (*Router, error) {
	opts = opts.withDefaults()
	if len(opts.Shards) == 0 {
		return nil, errors.New("router: no shards configured")
	}
	seen := make(map[string]bool, len(opts.Shards))
	for _, a := range opts.Shards {
		if a == "" {
			return nil, errors.New("router: empty shard address")
		}
		if seen[a] {
			return nil, fmt.Errorf("router: duplicate shard address %q", a)
		}
		seen[a] = true
	}
	r := &Router{
		opts:      opts,
		ring:      newRing(opts.Shards, opts.VirtualNodes),
		limiter:   newTenantLimiter(opts.RateLimit, opts.RateBurst),
		placement: make(map[string]string),
		migrating: make(map[string]bool),
		inflight:  make(map[string]int),
		serving:   make(map[*connState]struct{}),
	}
	r.mcond = sync.NewCond(&r.mmu)
	r.baseCtx, r.baseCancel = context.WithCancel(context.Background())
	for _, addr := range opts.Shards {
		r.shards = append(r.shards, newShard(addr, opts.Client))
	}
	if opts.Root != "" {
		if err := opts.FS.MkdirAll(opts.Root); err != nil {
			return nil, fmt.Errorf("router: %v", err)
		}
		if err := r.loadPlacement(); err != nil {
			return nil, err
		}
	}
	for _, sh := range r.shards {
		r.wg.Add(1)
		go r.probeLoop(sh)
	}
	return r, nil
}

// Stats exposes the router's counters.
func (r *Router) Stats() *Stats { return &r.stats }

// shardIndex returns the index of addr in the configured shard list, or
// -1 when addr is not a configured shard.
func (r *Router) shardIndex(addr string) int {
	for i, sh := range r.shards {
		if sh.addr == addr {
			return i
		}
	}
	return -1
}

// shardFor resolves the shard owning a table: the placement override if
// one exists, the ring otherwise.
func (r *Router) shardFor(table string) *shard {
	r.pmu.Lock()
	addr, ok := r.placement[table]
	r.pmu.Unlock()
	if ok {
		if i := r.shardIndex(addr); i >= 0 {
			return r.shards[i]
		}
		// Stale override naming a shard no longer configured: fall back to
		// the ring rather than blackholing the table.
	}
	return r.shards[r.ring.owner(table)]
}

// Placement reports the table's current shard address and whether an
// override (vs. the ring) decided it.
func (r *Router) Placement(table string) (addr string, overridden bool) {
	r.pmu.Lock()
	addr, overridden = r.placement[table]
	r.pmu.Unlock()
	if overridden && r.shardIndex(addr) >= 0 {
		return addr, true
	}
	return r.shards[r.ring.owner(table)].addr, false
}

// setPlacement records (and persists) a placement override. Writers
// serialize on wmu; pmu is held only for the in-memory map mutation and
// snapshot, never across the fsync — a placement write must not stall
// the routing of every other table behind disk latency (DESIGN §11).
// Lock order: wmu before pmu.
func (r *Router) setPlacement(table, addr string) error {
	r.wmu.Lock()
	defer r.wmu.Unlock()
	r.pmu.Lock()
	prev, had := r.placement[table]
	if r.shards[r.ring.owner(table)].addr == addr {
		// Migrating back to the ring's choice: drop the override entirely
		// so the map only carries exceptions.
		delete(r.placement, table)
	} else {
		r.placement[table] = addr
	}
	snapshot := make(map[string]string, len(r.placement))
	for k, v := range r.placement {
		snapshot[k] = v
	}
	r.pmu.Unlock()
	if err := r.savePlacement(snapshot); err != nil {
		// Restore the in-memory map so routing matches the durable state.
		// wmu is still held, so no concurrent writer saw the new entry on
		// disk; readers that routed on it meanwhile routed on a placement
		// that simply never became durable — the same window a crash
		// before the rename leaves.
		r.pmu.Lock()
		if had {
			r.placement[table] = prev
		} else {
			delete(r.placement, table)
		}
		r.pmu.Unlock()
		return err
	}
	return nil
}

// loadPlacement reads the override map from Root; a missing file is an
// empty map.
func (r *Router) loadPlacement() error {
	path := filepath.Join(r.opts.Root, placementFile)
	data, err := vfs.ReadFile(r.opts.FS, path)
	if err != nil {
		if _, serr := r.opts.FS.Stat(path); serr != nil {
			return nil // not written yet
		}
		return fmt.Errorf("router: read placement: %v", err)
	}
	m := make(map[string]string)
	if err := json.Unmarshal(data, &m); err != nil {
		return fmt.Errorf("router: parse placement: %v", err)
	}
	r.pmu.Lock()
	r.placement = m
	r.pmu.Unlock()
	return nil
}

// savePlacement writes a placement snapshot atomically: temp file,
// sync, rename, sync dir — the same recipe as the descriptor (§3.2).
// Callers hold wmu (so saves are ordered) but NOT pmu: the fsync runs
// outside the routing lock.
func (r *Router) savePlacement(placement map[string]string) error {
	if r.opts.Root == "" {
		return nil
	}
	data, err := json.MarshalIndent(placement, "", "  ")
	if err != nil {
		return err
	}
	path := filepath.Join(r.opts.Root, placementFile)
	tmp := path + ".tmp"
	f, err := r.opts.FS.Create(tmp)
	if err != nil {
		return fmt.Errorf("router: persist placement: %v", err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return fmt.Errorf("router: persist placement: %v", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("router: persist placement: %v", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("router: persist placement: %v", err)
	}
	if err := r.opts.FS.Rename(tmp, path); err != nil {
		return fmt.Errorf("router: persist placement: %v", err)
	}
	if err := r.opts.FS.SyncDir(r.opts.Root); err != nil {
		return fmt.Errorf("router: persist placement: %v", err)
	}
	return nil
}

// beginTable gates one routed request on table: it blocks while a
// migration cutover has the table frozen, then registers the request so
// the next cutover can drain it. The returned func must be called when
// the request finishes.
func (r *Router) beginTable(ctx context.Context, table string) (func(), error) {
	r.mmu.Lock()
	for r.migrating[table] {
		if ctx.Err() != nil {
			r.mmu.Unlock()
			return nil, ctx.Err()
		}
		// Cutovers are sub-second (a placement flip plus a tablet delta);
		// waiting beats bouncing an Overloaded refusal back per request.
		r.mcond.Wait()
	}
	r.inflight[table]++
	r.mmu.Unlock()
	return func() {
		r.mmu.Lock()
		r.inflight[table]--
		if r.inflight[table] == 0 {
			delete(r.inflight, table)
			r.mcond.Broadcast()
		}
		r.mmu.Unlock()
	}, nil
}

// freezeTable closes the cutover gate for table and waits until every
// in-flight routed request on it drains. The returned func reopens the
// gate.
func (r *Router) freezeTable(ctx context.Context, table string) (func(), error) {
	r.mmu.Lock()
	if r.migrating[table] {
		r.mmu.Unlock()
		return nil, fmt.Errorf("router: table %q already migrating", table)
	}
	r.migrating[table] = true
	for r.inflight[table] > 0 {
		if ctx.Err() != nil {
			delete(r.migrating, table)
			r.mcond.Broadcast()
			r.mmu.Unlock()
			return nil, ctx.Err()
		}
		r.mcond.Wait()
	}
	r.mmu.Unlock()
	return func() {
		r.mmu.Lock()
		delete(r.migrating, table)
		r.mcond.Broadcast()
		r.mmu.Unlock()
	}, nil
}

// Close stops probes, closes listeners and client pools, and cancels
// in-flight work.
func (r *Router) Close() error {
	if !r.closed.CompareAndSwap(false, true) {
		return nil
	}
	r.baseCancel()
	// Wake any cond waiters so gated requests observe cancellation.
	r.mmu.Lock()
	r.mcond.Broadcast()
	r.mmu.Unlock()
	r.smu.Lock()
	for _, l := range r.lis {
		l.Close()
	}
	r.lis = nil
	for st := range r.serving {
		st.conn.Close()
	}
	r.smu.Unlock()
	for _, sh := range r.shards {
		sh.close()
	}
	r.wg.Wait()
	return nil
}

// statsResult snapshots the router counters plus shard health.
func (r *Router) statsResult() *wire.RouterStatsResult {
	res := &wire.RouterStatsResult{
		RoutedInserts:       r.stats.RoutedInserts.Load(),
		RoutedQueries:       r.stats.RoutedQueries.Load(),
		ScatterFanout:       r.stats.ScatterFanout.Load(),
		ShardDown:           r.stats.ShardDown.Load(),
		RateLimited:         r.stats.RateLimited.Load(),
		MigrationsCompleted: r.stats.MigrationsCompleted.Load(),
		MigratedBytes:       r.stats.MigratedBytes.Load(),
	}
	for _, sh := range r.shards {
		res.Shards = append(res.Shards, wire.RouterShardInfo{
			Addr:  sh.addr,
			State: uint8(sh.state.Load()),
		})
	}
	sort.Slice(res.Shards, func(i, j int) bool { return res.Shards[i].Addr < res.Shards[j].Addr })
	return res
}
