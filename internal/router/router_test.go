// Package router's tests run the full topology in-process: real shard
// servers, a real router, and the ordinary client dialed at the router —
// every request crosses two real TCP hops.
package router

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"littletable/internal/client"
	"littletable/internal/clock"
	"littletable/internal/core"
	"littletable/internal/ltval"
	"littletable/internal/schema"
	"littletable/internal/server"
	"littletable/internal/wire"
)

func testSchema() *schema.Schema {
	return schema.MustNew([]schema.Column{
		{Name: "k", Type: ltval.Int64},
		{Name: "ts", Type: ltval.Timestamp},
	}, []string{"k", "ts"})
}

func row(k, ts int64) schema.Row {
	return schema.Row{ltval.NewInt64(k), ltval.NewTimestamp(ts)}
}

type testShard struct {
	srv  *server.Server
	addr string
	root string
}

func startShard(t *testing.T) *testShard {
	t.Helper()
	return startShardAt(t, t.TempDir(), "127.0.0.1:0")
}

func startShardAt(t *testing.T, root, addr string) *testShard {
	t.Helper()
	s, err := server.New(server.Options{
		Root:                root,
		Core:                core.Options{Clock: clock.Real{}},
		MaintenanceInterval: 50 * time.Millisecond,
		Logf:                func(string, ...interface{}) {},
	})
	if err != nil {
		t.Fatal(err)
	}
	var lis net.Listener
	deadline := time.Now().Add(5 * time.Second)
	for {
		lis, err = net.Listen("tcp", addr)
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("listen %s: %v", addr, err)
		}
		time.Sleep(20 * time.Millisecond)
	}
	go s.Serve(lis)
	sh := &testShard{srv: s, addr: lis.Addr().String(), root: root}
	t.Cleanup(func() { s.Close() })
	return sh
}

func startRouter(t *testing.T, opts Options, shards ...*testShard) (*Router, string) {
	t.Helper()
	for _, sh := range shards {
		opts.Shards = append(opts.Shards, sh.addr)
	}
	if opts.ProbeInterval == 0 {
		opts.ProbeInterval = 50 * time.Millisecond
	}
	if opts.Logf == nil {
		opts.Logf = func(string, ...interface{}) {}
	}
	r, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go r.Serve(lis)
	t.Cleanup(func() { r.Close() })
	return r, lis.Addr().String()
}

func fastClient(t *testing.T, addr string) *client.Client {
	t.Helper()
	c, err := client.DialContext(context.Background(), addr, client.Options{
		DialTimeout:    2 * time.Second,
		RetryBaseDelay: time.Millisecond,
		RetryMaxDelay:  10 * time.Millisecond,
		JitterSeed:     1,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func TestRouterEndToEnd(t *testing.T) {
	s1, s2, s3 := startShard(t), startShard(t), startShard(t)
	r, addr := startRouter(t, Options{}, s1, s2, s3)
	c := fastClient(t, addr)

	// Enough tables that the ring spreads them across more than one shard.
	const tables = 12
	for i := 0; i < tables; i++ {
		name := fmt.Sprintf("cust%d_usage", i)
		if err := c.CreateTable(name, testSchema(), 0); err != nil {
			t.Fatal(err)
		}
		tab, err := c.OpenTable(name)
		if err != nil {
			t.Fatal(err)
		}
		for k := int64(0); k < 10; k++ {
			if err := tab.InsertNow([]schema.Row{row(k, 1000+k)}); err != nil {
				t.Fatal(err)
			}
		}
	}
	// Every table reads back through the router.
	for i := 0; i < tables; i++ {
		name := fmt.Sprintf("cust%d_usage", i)
		tab, err := c.OpenTable(name)
		if err != nil {
			t.Fatal(err)
		}
		rows, err := tab.Query(client.NewQuery()).All()
		if err != nil {
			t.Fatal(err)
		}
		if len(rows) != 10 {
			t.Fatalf("table %s: %d rows through router, want 10", name, len(rows))
		}
	}
	// The ring actually sharded: no single shard holds everything.
	placedOn := 0
	for _, sh := range []*testShard{s1, s2, s3} {
		if n := len(sh.srv.TableNames()); n > 0 {
			placedOn++
			if n == tables {
				t.Fatalf("all %d tables on one shard; ring not spreading", tables)
			}
		}
	}
	if placedOn < 2 {
		t.Fatalf("tables placed on %d shards, want >= 2", placedOn)
	}
	// Tables land where the router says they do.
	for i := 0; i < tables; i++ {
		name := fmt.Sprintf("cust%d_usage", i)
		want, _ := r.Placement(name)
		found := ""
		for _, sh := range []*testShard{s1, s2, s3} {
			for _, n := range sh.srv.TableNames() {
				if n == name {
					found = sh.addr
				}
			}
		}
		if found != want {
			t.Errorf("table %s on %s, router says %s", name, found, want)
		}
	}
	// ListTables merges all shards.
	names, err := c.ListTables()
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != tables {
		t.Fatalf("merged ListTables has %d names, want %d", len(names), tables)
	}
	if r.Stats().RoutedInserts.Load() == 0 || r.Stats().RoutedQueries.Load() == 0 {
		t.Error("router counters not advancing")
	}
}

func TestRouterScatterQuery(t *testing.T) {
	s1, s2, s3 := startShard(t), startShard(t), startShard(t)
	_, addr := startRouter(t, Options{}, s1, s2, s3)
	c := fastClient(t, addr)
	total := 0
	for i := 0; i < 8; i++ {
		name := fmt.Sprintf("acme_t%d", i)
		if err := c.CreateTable(name, testSchema(), 0); err != nil {
			t.Fatal(err)
		}
		tab, err := c.OpenTable(name)
		if err != nil {
			t.Fatal(err)
		}
		for k := int64(0); k <= int64(i); k++ {
			if err := tab.InsertNow([]schema.Row{row(k, 1000)}); err != nil {
				t.Fatal(err)
			}
			total++
		}
	}
	res, err := c.ScatterQuery(context.Background(), &wire.ScatterQuery{Prefix: "acme_", MaxTs: core.TsMax})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tables) != 8 {
		t.Fatalf("scatter returned %d tables, want 8", len(res.Tables))
	}
	got := 0
	for i, sec := range res.Tables {
		got += len(sec.Rows)
		if i > 0 && sec.Table <= res.Tables[i-1].Table {
			t.Errorf("sections unsorted: %q after %q", sec.Table, res.Tables[i-1].Table)
		}
	}
	if got != total {
		t.Fatalf("scatter returned %d rows, want %d", got, total)
	}
	// MaxTables truncates the merged result.
	res, err = c.ScatterQuery(context.Background(), &wire.ScatterQuery{Prefix: "acme_", MaxTs: core.TsMax, MaxTables: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Truncated || len(res.Tables) != 3 {
		t.Fatalf("truncation: got %d tables truncated=%v", len(res.Tables), res.Truncated)
	}
}

func TestRouterRateLimit(t *testing.T) {
	s1 := startShard(t)
	r, addr := startRouter(t, Options{RateLimit: 5, RateBurst: 3}, s1)
	c, err := client.DialContext(context.Background(), addr, client.Options{
		MaxRetries: -1, JitterSeed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.CreateTable("acme_usage", testSchema(), 0); err != nil {
		t.Fatal(err)
	}
	tab, err := c.OpenTable("acme_usage")
	if err != nil {
		t.Fatal(err)
	}
	// Burn the burst, then the refusal must be the typed retryable one.
	var limited bool
	for i := int64(0); i < 10; i++ {
		err := tab.InsertNow([]schema.Row{row(i, 1000)})
		if err == nil {
			continue
		}
		if !errors.Is(err, client.ErrOverloaded) {
			t.Fatalf("rate-limit refusal is %v, want ErrOverloaded", err)
		}
		limited = true
	}
	if !limited {
		t.Fatal("10 instant inserts with burst 3 never rate-limited")
	}
	if r.Stats().RateLimited.Load() == 0 {
		t.Error("RateLimited counter not advancing")
	}
	// A different tenant has its own bucket.
	if err := c.CreateTable("other_usage", testSchema(), 0); err != nil {
		t.Fatalf("second tenant blocked by first tenant's bucket: %v", err)
	}
}

func TestRouterShardDownFailFast(t *testing.T) {
	s1, s2 := startShard(t), startShard(t)
	r, addr := startRouter(t, Options{ProbeInterval: time.Hour}, s1, s2) // probes driven by hand
	c, err := client.DialContext(context.Background(), addr, client.Options{
		MaxRetries: -1, JitterSeed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Find a table name on each shard.
	tableOn := map[string]string{}
	for i := 0; len(tableOn) < 2; i++ {
		name := fmt.Sprintf("t%d", i)
		a, _ := r.Placement(name)
		if _, ok := tableOn[a]; !ok {
			tableOn[a] = name
			if err := c.CreateTable(name, testSchema(), 0); err != nil {
				t.Fatal(err)
			}
		}
	}

	s1.srv.Close()
	for i := 0; i < probeFailThreshold+1; i++ {
		for _, sh := range r.shards {
			r.probeOnce(sh)
		}
	}
	if got := r.shards[0].state.Load(); got != shardDown {
		t.Fatalf("shard 0 state %d after failed probes, want down", got)
	}

	// Requests for the dead shard's table fail fast with the retryable
	// refusal; the live shard's table still serves.
	deadTable, liveTable := tableOn[s1.addr], tableOn[s2.addr]
	start := time.Now()
	_, _, err = c.Do(context.Background(), wire.MsgGetSchema, (&wire.TableName{Name: deadTable}).Encode())
	if !errors.Is(err, client.ErrOverloaded) {
		t.Fatalf("dead-shard request: %v, want ErrOverloaded", err)
	}
	if d := time.Since(start); d > time.Second {
		t.Fatalf("fail-fast took %v", d)
	}
	if _, _, err := c.Do(context.Background(), wire.MsgGetSchema, (&wire.TableName{Name: liveTable}).Encode()); err != nil {
		t.Fatalf("live shard request failed: %v", err)
	}
	if r.Stats().ShardDown.Load() != 1 {
		t.Errorf("ShardDown = %d, want 1", r.Stats().ShardDown.Load())
	}

	// Revive at the same address: probes heal the shard and routing resumes.
	startShardAt(t, t.TempDir(), s1.addr)
	deadline := time.Now().Add(5 * time.Second)
	for r.shards[0].state.Load() != shardUp {
		for _, sh := range r.shards {
			r.probeOnce(sh)
		}
		if time.Now().After(deadline) {
			t.Fatal("shard never probed back up")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err := c.CreateTable(deadTable+"x", testSchema(), 0); err != nil {
		t.Fatalf("request after revival: %v", err)
	}
}

func TestMigrateMovesTable(t *testing.T) {
	s1, s2, s3 := startShard(t), startShard(t), startShard(t)
	root := t.TempDir()
	r, addr := startRouter(t, Options{Root: root}, s1, s2, s3)
	c := fastClient(t, addr)

	const table = "acme_usage"
	if err := c.CreateTable(table, testSchema(), 0); err != nil {
		t.Fatal(err)
	}
	tab, err := c.OpenTable(table)
	if err != nil {
		t.Fatal(err)
	}
	for k := int64(0); k < 200; k++ {
		if err := tab.Insert(row(k, 1000+k)); err != nil {
			t.Fatal(err)
		}
	}
	if err := tab.Flush(); err != nil {
		t.Fatal(err)
	}

	srcAddr, _ := r.Placement(table)
	var target *testShard
	for _, sh := range []*testShard{s1, s2, s3} {
		if sh.addr != srcAddr {
			target = sh
			break
		}
	}
	// Drive the migration through the wire, as an operator tool would.
	mt, _, err := c.Do(context.Background(), wire.MsgMigrateTable,
		(&wire.MigrateTable{Table: table, TargetAddr: target.addr}).Encode())
	if err != nil {
		t.Fatalf("migrate: %v", err)
	}
	if mt != wire.MsgOK {
		t.Fatalf("migrate response type %d", mt)
	}

	// Placement flipped and persisted; data serves from the target.
	if got, overridden := r.Placement(table); got != target.addr || !overridden {
		t.Fatalf("placement after migrate: %s overridden=%v", got, overridden)
	}
	rows, err := tab.Query(client.NewQuery()).All()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 200 {
		t.Fatalf("after migrate: %d rows, want 200", len(rows))
	}
	found := false
	for _, n := range target.srv.TableNames() {
		if n == table {
			found = true
		}
	}
	if !found {
		t.Fatal("table absent from target shard")
	}
	for _, sh := range []*testShard{s1, s2, s3} {
		if sh.addr == srcAddr {
			for _, n := range sh.srv.TableNames() {
				if n == table {
					t.Fatal("table still present on source shard")
				}
			}
		}
	}
	if r.Stats().MigrationsCompleted.Load() != 1 || r.Stats().MigratedBytes.Load() == 0 {
		t.Errorf("migration counters: completed=%d bytes=%d",
			r.Stats().MigrationsCompleted.Load(), r.Stats().MigratedBytes.Load())
	}

	// Writes keep landing on the new home.
	if err := tab.InsertNow([]schema.Row{row(999, 5000)}); err != nil {
		t.Fatal(err)
	}

	// A fresh router with the same root loads the override.
	r2, err := New(Options{Shards: []string{s1.addr, s2.addr, s3.addr}, Root: root,
		Logf: func(string, ...interface{}) {}})
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	if got, overridden := r2.Placement(table); got != target.addr || !overridden {
		t.Fatalf("reloaded placement: %s overridden=%v", got, overridden)
	}
}

// TestMigrateUnderConcurrentInserts is the live-migration contract:
// writers keep inserting through the router while the table moves, and
// every acknowledged insert is present on the new shard afterwards.
func TestMigrateUnderConcurrentInserts(t *testing.T) {
	s1, s2 := startShard(t), startShard(t)
	r, addr := startRouter(t, Options{}, s1, s2)
	c := fastClient(t, addr)

	const table = "acme_usage"
	if err := c.CreateTable(table, testSchema(), 0); err != nil {
		t.Fatal(err)
	}
	srcAddr, _ := r.Placement(table)
	target := s1
	if srcAddr == s1.addr {
		target = s2
	}

	const writers = 3
	var mu sync.Mutex
	acked := map[int64]bool{}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int64) {
			defer wg.Done()
			wc := fastClient(t, addr)
			tab, err := wc.OpenTable(table)
			if err != nil {
				t.Error(err)
				return
			}
			for seq := int64(0); ; seq++ {
				select {
				case <-stop:
					return
				default:
				}
				k := w*1_000_000 + seq
				if err := tab.InsertNow([]schema.Row{row(k, 1000+seq)}); err == nil {
					mu.Lock()
					acked[k] = true
					mu.Unlock()
				}
			}
		}(int64(w))
	}
	time.Sleep(100 * time.Millisecond) // build up rows and in-flight traffic
	if err := r.Migrate(context.Background(), table, target.addr); err != nil {
		t.Fatalf("migrate under load: %v", err)
	}
	time.Sleep(50 * time.Millisecond) // writers keep going against the new home
	close(stop)
	wg.Wait()

	tab, err := c.OpenTable(table)
	if err != nil {
		t.Fatal(err)
	}
	all, err := tab.Query(client.NewQuery()).All()
	if err != nil {
		t.Fatal(err)
	}
	present := map[int64]bool{}
	for _, rw := range all {
		present[rw[0].Int] = true
	}
	mu.Lock()
	defer mu.Unlock()
	lost := 0
	for k := range acked {
		if !present[k] {
			lost++
		}
	}
	if lost > 0 {
		t.Fatalf("%d of %d acked inserts lost across live migration", lost, len(acked))
	}
	t.Logf("migrated with %d acked inserts in flight", len(acked))
}
