package router

import (
	"context"
	"sort"
	"sync"
	"time"

	"littletable/internal/client"
	"littletable/internal/wire"
)

// fanOut runs fn against every listed shard with bounded concurrency.
// The first error cancels the context handed to the remaining calls, so
// a stuck shard cannot pin the whole scatter — end-to-end cancellation
// flows from the router's base context through each per-shard client
// request. Results land in out[i] for shards[i]; a nil error means every
// fn returned nil.
func (r *Router) fanOut(ctx context.Context, shards []*shard, fn func(ctx context.Context, sh *shard, cl *client.Client) error) error {
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	sem := make(chan struct{}, r.opts.ScatterConcurrency)
	errc := make(chan error, len(shards))
	// Every worker is WaitGroup-tied: draining errc proves every fn
	// returned, but not that the goroutines finished their sem release,
	// so fanOut waits for true quiescence before returning. Without this
	// a worker's tail could still be running while Close tears the
	// router down.
	var wg sync.WaitGroup
	for _, sh := range shards {
		sem <- struct{}{}
		wg.Add(1)
		go func(sh *shard) {
			defer wg.Done()
			defer func() { <-sem }()
			cl, err := sh.client(ctx)
			if err == nil {
				err = fn(ctx, sh, cl)
			}
			if err != nil {
				cancel()
			}
			errc <- err
		}(sh)
	}
	var first error
	for range shards {
		if err := <-errc; err != nil && first == nil {
			first = err
		}
	}
	wg.Wait()
	return first
}

// upShards returns the shards the prober considers alive.
func (r *Router) upShards() (up []*shard, down []*shard) {
	for _, sh := range r.shards {
		if sh.up() {
			up = append(up, sh)
		} else {
			down = append(down, sh)
		}
	}
	return up, down
}

// handleListTables merges every live shard's table list. Down shards are
// skipped (and logged): listing is a monitoring operation, and a partial
// list beats no list during an outage.
func (r *Router) handleListTables(wc *wire.Conn) error {
	up, downShards := r.upShards()
	r.stats.ScatterFanout.Add(int64(len(up)))
	lists := make([][]string, len(up))
	idx := make(map[*shard]int, len(up))
	for i, sh := range up {
		idx[sh] = i
	}
	err := r.fanOut(r.baseCtx, up, func(ctx context.Context, sh *shard, cl *client.Client) error {
		names, err := cl.ListTablesCtx(ctx)
		if err != nil {
			return err
		}
		lists[idx[sh]] = names
		return nil
	})
	if err != nil {
		return r.sendErr(wc, err)
	}
	for _, sh := range downShards {
		r.opts.Logf("router: list-tables skipping down shard %s", sh.addr)
	}
	seen := make(map[string]bool)
	var names []string
	for _, l := range lists {
		for _, n := range l {
			if !seen[n] {
				seen[n] = true
				names = append(names, n)
			}
		}
	}
	sort.Strings(names)
	m := &wire.TableList{Names: names}
	return wc.WriteMsg(wire.MsgTableList, m.Encode())
}

// handleServerStats sums every live shard's connection counters — the
// cluster-wide view of the numbers each server exposes.
func (r *Router) handleServerStats(wc *wire.Conn) error {
	up, _ := r.upShards()
	r.stats.ScatterFanout.Add(int64(len(up)))
	results := make([]*wire.ServerStatsResult, len(up))
	idx := make(map[*shard]int, len(up))
	for i, sh := range up {
		idx[sh] = i
	}
	err := r.fanOut(r.baseCtx, up, func(ctx context.Context, sh *shard, cl *client.Client) error {
		st, err := cl.ServerStats(ctx)
		if err != nil {
			return err
		}
		results[idx[sh]] = st
		return nil
	})
	if err != nil {
		return r.sendErr(wc, err)
	}
	var sum wire.ServerStatsResult
	for _, st := range results {
		sum.ConnsActive += st.ConnsActive
		sum.RequestsInFlight += st.RequestsInFlight
		sum.ConnsDroppedDeadline += st.ConnsDroppedDeadline
		sum.ConnsDroppedOversize += st.ConnsDroppedOversize
		sum.RequestsShed += st.RequestsShed
		sum.Draining += st.Draining
		sum.DrainNs += st.DrainNs
	}
	return wc.WriteMsg(wire.MsgServerStatsResult, sum.Encode())
}

// handleScatterQuery fans a prefix query out to every shard and merges
// the per-table sections. Unlike listing, a scatter QUERY must be
// complete to be correct, so a down or failing shard fails the whole
// request rather than silently dropping its tables.
func (r *Router) handleScatterQuery(wc *wire.Conn, payload []byte) error {
	m, err := wire.DecodeScatterQuery(payload)
	if err != nil {
		return r.sendErr(wc, err)
	}
	if !r.limiter.allow(tenantOf(m.Prefix), time.Now()) {
		r.stats.RateLimited.Add(1)
		return r.sendOverloaded(wc, "router: tenant rate limit exceeded; back off and retry")
	}
	up, downShards := r.upShards()
	if len(downShards) > 0 {
		return r.sendOverloaded(wc, "router: scatter with shard "+downShards[0].addr+" down; back off and retry")
	}
	r.stats.ScatterFanout.Add(int64(len(up)))
	r.stats.RoutedQueries.Add(1)
	results := make([]*wire.ScatterRows, len(up))
	idx := make(map[*shard]int, len(up))
	for i, sh := range up {
		idx[sh] = i
	}
	err = r.fanOut(r.baseCtx, up, func(ctx context.Context, sh *shard, cl *client.Client) error {
		res, err := cl.ScatterQuery(ctx, m)
		if err != nil {
			return err
		}
		results[idx[sh]] = res
		return nil
	})
	if err != nil {
		return r.sendErr(wc, err)
	}
	merged := &wire.ScatterRows{}
	lists := make([][]wire.ScatterTableRows, len(up))
	for i, res := range results {
		merged.Truncated = merged.Truncated || res.Truncated
		lists[i] = res.Tables
	}
	merged.Tables = mergeSections(r, up, lists, func(sec wire.ScatterTableRows) string { return sec.Table })
	if m.MaxTables > 0 && len(merged.Tables) > int(m.MaxTables) {
		merged.Tables = merged.Tables[:m.MaxTables]
		merged.Truncated = true
	}
	b, err := merged.Encode()
	if err != nil {
		return r.sendErr(wc, err)
	}
	return wc.WriteMsg(wire.MsgScatterRows, b)
}

// mergeSections k-way merges per-shard section lists into one list
// sorted by table name. Each server already emits its sections in
// sorted name order, so the merge is a heads walk, not a re-sort: pick
// the smallest head name, emit one section for it, advance every list
// positioned there. A table can transiently exist on two shards
// mid-migration; the copy from the shard the ring routes the table to
// is authoritative, with the first reporter as fallback when the owner
// itself did not report it.
func mergeSections[T any](r *Router, shards []*shard, lists [][]T, name func(T) string) []T {
	heads := make([]int, len(lists))
	total := 0
	for _, l := range lists {
		total += len(l)
	}
	merged := make([]T, 0, total)
	for {
		min := ""
		any := false
		for i, l := range lists {
			if heads[i] >= len(l) {
				continue
			}
			if n := name(l[heads[i]]); !any || n < min {
				min, any = n, true
			}
		}
		if !any {
			return merged
		}
		owner := r.shardFor(min)
		chosen, have := -1, false
		for i, l := range lists {
			if heads[i] >= len(l) || name(l[heads[i]]) != min {
				continue
			}
			if !have || shards[i] == owner {
				chosen, have = i, true
			}
			heads[i]++
		}
		merged = append(merged, lists[chosen][heads[chosen]-1])
	}
}
