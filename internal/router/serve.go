package router

import (
	"errors"
	"fmt"
	"io"
	"net"
	"time"

	"littletable/internal/client"
	"littletable/internal/wire"
)

// connState tracks one client connection for Close teardown.
type connState struct {
	conn net.Conn
}

// timeoutConn arms a fresh deadline before every Read/Write, mirroring
// the server's stall protection.
type timeoutConn struct {
	net.Conn
	readTimeout  time.Duration
	writeTimeout time.Duration
}

func (c *timeoutConn) Read(p []byte) (int, error) {
	if c.readTimeout > 0 {
		if err := c.Conn.SetReadDeadline(time.Now().Add(c.readTimeout)); err != nil {
			return 0, err
		}
	}
	return c.Conn.Read(p)
}

func (c *timeoutConn) Write(p []byte) (int, error) {
	if c.writeTimeout > 0 {
		if err := c.Conn.SetWriteDeadline(time.Now().Add(c.writeTimeout)); err != nil {
			return 0, err
		}
	}
	return c.Conn.Write(p)
}

// Serve accepts and serves router connections on lis until Close.
func (r *Router) Serve(lis net.Listener) error {
	r.smu.Lock()
	if r.closed.Load() {
		r.smu.Unlock()
		lis.Close()
		return errors.New("router: closed")
	}
	r.lis = append(r.lis, lis)
	r.smu.Unlock()
	for {
		conn, err := lis.Accept()
		if err != nil {
			if r.closed.Load() {
				return nil
			}
			return err
		}
		st := &connState{conn: conn}
		r.smu.Lock()
		r.serving[st] = struct{}{}
		r.smu.Unlock()
		r.wg.Add(1)
		go func() {
			defer r.wg.Done()
			r.handleConn(st)
			r.smu.Lock()
			delete(r.serving, st)
			r.smu.Unlock()
		}()
	}
}

// ListenAndServe listens on addr and serves.
func (r *Router) ListenAndServe(addr string) error {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return r.Serve(lis)
}

func (r *Router) handleConn(st *connState) {
	defer st.conn.Close()
	wc := wire.NewConn(&timeoutConn{
		Conn:         st.conn,
		readTimeout:  r.opts.ReadTimeout,
		writeTimeout: r.opts.WriteTimeout,
	})
	wc.SetReadLimit(r.opts.MaxRequestBytes)
	for {
		mt, payload, err := wc.ReadMsg()
		if err != nil {
			switch {
			case errors.Is(err, io.EOF), errors.Is(err, net.ErrClosed):
			default:
				r.opts.Logf("router: read %s: %v", st.conn.RemoteAddr(), err)
			}
			return
		}
		if err := r.dispatch(wc, mt, payload); err != nil {
			r.opts.Logf("router: conn %s: %v", st.conn.RemoteAddr(), err)
			return
		}
	}
}

func (r *Router) sendErr(wc *wire.Conn, err error) error {
	msg := err.Error()
	var re *client.RemoteError
	if errors.As(err, &re) {
		// Relay the shard's message as the shard sent it, not double
		// wrapped.
		msg = re.Msg
	}
	m := &wire.ErrorMsg{Message: msg}
	return wc.WriteMsg(wire.MsgError, m.Encode())
}

func (r *Router) sendOverloaded(wc *wire.Conn, msg string) error {
	m := &wire.ErrorMsg{Message: msg}
	return wc.WriteMsg(wire.MsgOverloaded, m.Encode())
}

// rateLimited reports whether mt spends a token from the table's tenant
// bucket. Only data-path operations are limited; schema management and
// monitoring always pass.
func rateLimited(mt wire.MsgType) bool {
	switch mt {
	case wire.MsgInsert, wire.MsgQuery, wire.MsgLatestRow, wire.MsgDelete,
		wire.MsgScatterQuery, wire.MsgAggQuery:
		return true
	}
	return false
}

func (r *Router) dispatch(wc *wire.Conn, mt wire.MsgType, payload []byte) error {
	switch mt {
	case wire.MsgHello:
		h, err := wire.DecodeHello(payload)
		if err != nil {
			return err
		}
		if h.Version != wire.ProtocolVersion {
			return r.sendErr(wc, fmt.Errorf("router: protocol version %d unsupported", h.Version))
		}
		return wc.WriteMsg(wire.MsgOK, nil)

	case wire.MsgListTables:
		return r.handleListTables(wc)

	case wire.MsgServerStats:
		return r.handleServerStats(wc)

	case wire.MsgScatterQuery:
		return r.handleScatterQuery(wc, payload)

	case wire.MsgAggQuery:
		return r.handleAggQuery(wc, payload)

	case wire.MsgRouterStats:
		return wc.WriteMsg(wire.MsgRouterStatsResult, r.statsResult().Encode())

	case wire.MsgMigrateTable:
		return r.handleMigrateTable(wc, payload)

	case wire.MsgCreateTable, wire.MsgDropTable, wire.MsgGetSchema,
		wire.MsgInsert, wire.MsgQuery, wire.MsgLatestRow, wire.MsgAlterTTL,
		wire.MsgAddColumn, wire.MsgWidenColumn, wire.MsgFlushTable,
		wire.MsgDelete, wire.MsgStats,
		wire.MsgMigrateBegin, wire.MsgMigrateFetch, wire.MsgMigrateEnd,
		wire.MsgMigrateInstall:
		return r.forwardTable(wc, mt, payload)

	default:
		return r.sendErr(wc, fmt.Errorf("router: unknown message type %d", mt))
	}
}

// forwardTable proxies one table-scoped request to the shard owning the
// table, relaying the response verbatim. The payload is never decoded
// beyond its leading table name, so the router works for every
// table-scoped request type — including ones newer than it.
func (r *Router) forwardTable(wc *wire.Conn, mt wire.MsgType, payload []byte) error {
	table, err := wire.PeekTable(payload)
	if err != nil {
		return r.sendErr(wc, fmt.Errorf("router: bad request: %v", err))
	}
	if rateLimited(mt) && !r.limiter.allow(tenantOf(table), time.Now()) {
		r.stats.RateLimited.Add(1)
		return r.sendOverloaded(wc, "router: tenant rate limit exceeded; back off and retry")
	}
	done, err := r.beginTable(r.baseCtx, table)
	if err != nil {
		return r.sendErr(wc, err)
	}
	defer done()
	sh := r.shardFor(table)
	if !sh.up() {
		// Fail fast: the prober marked the shard dead, so don't burn a
		// dial timeout per request. Overloaded is honest here — the
		// request was not processed and may be retried.
		return r.sendOverloaded(wc, fmt.Sprintf("router: shard %s down; back off and retry", sh.addr))
	}
	cl, err := sh.client(r.baseCtx)
	if err != nil {
		// Dial failure: nothing was sent, so the retryable refusal applies.
		return r.sendOverloaded(wc, fmt.Sprintf("router: shard %s unreachable; back off and retry", sh.addr))
	}
	rt, resp, err := cl.Do(r.baseCtx, mt, payload)
	if err != nil {
		var re *client.RemoteError
		switch {
		case errors.As(err, &re):
			return r.sendErr(wc, err)
		case errors.Is(err, client.ErrOverloaded):
			return r.sendOverloaded(wc, fmt.Sprintf("router: shard %s overloaded; back off and retry", sh.addr))
		default:
			// Transport failure after retries. For non-idempotent requests
			// the fate is unknown, so this must be MsgError (fate unknown),
			// never the not-processed Overloaded promise.
			return r.sendErr(wc, fmt.Errorf("router: shard %s: %v", sh.addr, err))
		}
	}
	switch mt {
	case wire.MsgInsert:
		r.stats.RoutedInserts.Add(1)
	case wire.MsgQuery, wire.MsgLatestRow:
		r.stats.RoutedQueries.Add(1)
	}
	return wc.WriteMsg(rt, resp)
}

func (r *Router) handleMigrateTable(wc *wire.Conn, payload []byte) error {
	m, err := wire.DecodeMigrateTable(payload)
	if err != nil {
		return err
	}
	if err := r.Migrate(r.baseCtx, m.Table, m.TargetAddr); err != nil {
		return r.sendErr(wc, err)
	}
	return wc.WriteMsg(wire.MsgOK, nil)
}
