package schema

import (
	"encoding/json"
	"fmt"

	"littletable/internal/ltval"
)

// The JSON form is used in table descriptor files and tablet footers, where
// debuggability beats compactness: schemas are tiny and read rarely.

type jsonColumn struct {
	Name    string          `json:"name"`
	Type    string          `json:"type"`
	Default json.RawMessage `json:"default,omitempty"`
}

type jsonSchema struct {
	Columns []jsonColumn `json:"columns"`
	Key     []string     `json:"key"`
	Version uint32       `json:"version"`
}

// MarshalJSON implements json.Marshaler.
func (s *Schema) MarshalJSON() ([]byte, error) {
	js := jsonSchema{Version: s.Version}
	for _, c := range s.Columns {
		jc := jsonColumn{Name: c.Name, Type: c.Type.String()}
		if !c.Default.IsZero() {
			d, err := marshalValue(c.Default)
			if err != nil {
				return nil, err
			}
			jc.Default = d
		}
		js.Columns = append(js.Columns, jc)
	}
	js.Key = s.KeyNames()
	return json.Marshal(js)
}

// UnmarshalJSON implements json.Unmarshaler.
func (s *Schema) UnmarshalJSON(b []byte) error {
	var js jsonSchema
	if err := json.Unmarshal(b, &js); err != nil {
		return err
	}
	cols := make([]Column, 0, len(js.Columns))
	for _, jc := range js.Columns {
		t, err := ltval.ParseType(jc.Type)
		if err != nil {
			return err
		}
		c := Column{Name: jc.Name, Type: t}
		if jc.Default != nil {
			v, err := unmarshalValue(t, jc.Default)
			if err != nil {
				return fmt.Errorf("schema: column %q default: %w", jc.Name, err)
			}
			c.Default = v
		}
		cols = append(cols, c)
	}
	n, err := New(cols, js.Key)
	if err != nil {
		return err
	}
	if js.Version > 0 {
		n.Version = js.Version
	}
	*s = *n
	return nil
}

func marshalValue(v ltval.Value) (json.RawMessage, error) {
	switch v.Type {
	case ltval.Int32, ltval.Int64, ltval.Timestamp:
		return json.Marshal(v.Int)
	case ltval.Double:
		return json.Marshal(v.Float)
	case ltval.String:
		return json.Marshal(string(v.Bytes))
	case ltval.Blob:
		return json.Marshal(v.Bytes) // base64
	default:
		return nil, fmt.Errorf("schema: cannot marshal %v value", v.Type)
	}
}

func unmarshalValue(t ltval.Type, b json.RawMessage) (ltval.Value, error) {
	switch t {
	case ltval.Int32, ltval.Int64, ltval.Timestamp:
		var i int64
		if err := json.Unmarshal(b, &i); err != nil {
			return ltval.Value{}, err
		}
		return ltval.Value{Type: t, Int: i}, nil
	case ltval.Double:
		var f float64
		if err := json.Unmarshal(b, &f); err != nil {
			return ltval.Value{}, err
		}
		return ltval.NewDouble(f), nil
	case ltval.String:
		var s string
		if err := json.Unmarshal(b, &s); err != nil {
			return ltval.Value{}, err
		}
		return ltval.NewString(s), nil
	case ltval.Blob:
		var raw []byte
		if err := json.Unmarshal(b, &raw); err != nil {
			return ltval.Value{}, err
		}
		return ltval.NewBlob(raw), nil
	default:
		return ltval.Value{}, fmt.Errorf("schema: cannot unmarshal %v value", t)
	}
}
