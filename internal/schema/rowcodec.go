package schema

import (
	"fmt"

	"littletable/internal/ltval"
)

// AppendRow appends the binary encoding of row (which must match s) to dst.
// The encoding is simply each cell's ltval encoding in column order; the
// schema supplies all type information on decode, so rows carry no tags.
func (s *Schema) AppendRow(dst []byte, row Row) []byte {
	for _, v := range row {
		dst = v.Append(dst)
	}
	return dst
}

// EncodedRowSize returns the number of bytes AppendRow will write.
func (s *Schema) EncodedRowSize(row Row) int {
	n := 0
	for _, v := range row {
		n += v.EncodedSize()
	}
	return n
}

// DecodeRow decodes one row from b, returning the row and bytes consumed.
// Byte-slice cells alias b.
func (s *Schema) DecodeRow(b []byte) (Row, int, error) {
	row := make(Row, len(s.Columns))
	off := 0
	for i, c := range s.Columns {
		v, n, err := ltval.Decode(c.Type, b[off:])
		if err != nil {
			return nil, 0, fmt.Errorf("schema: row column %q: %w", c.Name, err)
		}
		row[i] = v
		off += n
	}
	return row, off, nil
}

// AppendKey appends the encoding of just the primary-key cells of row, in
// key order. Used for block index entries and Bloom filters, where only the
// key matters.
func (s *Schema) AppendKey(dst []byte, row Row) []byte {
	for _, k := range s.Key {
		dst = row[k].Append(dst)
	}
	return dst
}

// DecodeKey decodes a key encoded by AppendKey into key-ordered values.
func (s *Schema) DecodeKey(b []byte) ([]ltval.Value, error) {
	out := make([]ltval.Value, len(s.Key))
	off := 0
	for i, k := range s.Key {
		v, n, err := ltval.Decode(s.Columns[k].Type, b[off:])
		if err != nil {
			return nil, fmt.Errorf("schema: key column %q: %w", s.Columns[k].Name, err)
		}
		out[i] = v
		off += n
	}
	if off != len(b) {
		return nil, fmt.Errorf("schema: %d trailing bytes after key", len(b)-off)
	}
	return out, nil
}

// CompareRowToKey orders row against a key-ordered value slice (as produced
// by KeyOf or DecodeKey), comparing at most len(key) key columns. A short
// key acts as a prefix: rows equal on the prefix compare as 0.
func (s *Schema) CompareRowToKey(row Row, key []ltval.Value) int {
	n := len(key)
	if n > len(s.Key) {
		n = len(s.Key)
	}
	for i := 0; i < n; i++ {
		if c := row[s.Key[i]].Compare(key[i]); c != 0 {
			return c
		}
	}
	return 0
}

// CompareKeySlices orders two key-ordered value slices lexicographically.
// Slices of different lengths compare by common prefix, then by length, so
// a proper prefix sorts before any extension of it.
func CompareKeySlices(a, b []ltval.Value) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if c := a[i].Compare(b[i]); c != 0 {
			return c
		}
	}
	switch {
	case len(a) < len(b):
		return -1
	case len(a) > len(b):
		return 1
	default:
		return 0
	}
}
