// Package schema defines table schemas and rows.
//
// A LittleTable schema (§3.1) is an ordered set of columns, each with a
// name, type, and default value. An ordered subset of the columns forms the
// primary key; the final primary-key column must be of type timestamp and
// named "ts". The server returns query results ordered by primary key, and
// the engine clusters rows by the timestamp column and sorts within each
// cluster by the full key.
package schema

import (
	"errors"
	"fmt"
	"strings"

	"littletable/internal/ltval"
)

// TimestampColumn is the required name of the final primary-key column.
const TimestampColumn = "ts"

// MaxColumns bounds schema width; production tables are far narrower.
const MaxColumns = 255

// Column describes one column.
type Column struct {
	Name    string
	Type    ltval.Type
	Default ltval.Value // zero value of Type if unset
}

// Schema describes a table's layout. Schemas are immutable once built;
// evolution produces a new Schema with an incremented Version.
type Schema struct {
	Columns []Column
	// Key holds indexes into Columns forming the primary key, in key order.
	// The last entry always refers to the timestamp column.
	Key []int
	// Version increments on every schema change (§3.5). Tablet footers
	// record the version they were written under so readers can translate.
	Version uint32
}

// Row is a single row's cells, in schema column order.
type Row []ltval.Value

// Errors returned by schema validation.
var (
	ErrNoColumns      = errors.New("schema: table has no columns")
	ErrNoKey          = errors.New("schema: table has no primary key")
	ErrBadTimestamp   = errors.New("schema: final primary-key column must be timestamp \"ts\"")
	ErrDuplicateName  = errors.New("schema: duplicate column name")
	ErrUnknownColumn  = errors.New("schema: unknown column")
	ErrArity          = errors.New("schema: row arity does not match schema")
	ErrTypeMismatch   = errors.New("schema: value type does not match column type")
	ErrKeyNotPrefix   = errors.New("schema: key prefix longer than primary key")
	ErrNotWidenable   = errors.New("schema: only int32 columns can be widened to int64")
	ErrKeyColumn      = errors.New("schema: primary-key columns cannot be altered")
	ErrTooManyColumns = errors.New("schema: too many columns")
)

// New builds and validates a schema from columns and the names of the
// primary-key columns in key order.
func New(cols []Column, key []string) (*Schema, error) {
	if len(cols) == 0 {
		return nil, ErrNoColumns
	}
	if len(cols) > MaxColumns {
		return nil, ErrTooManyColumns
	}
	if len(key) == 0 {
		return nil, ErrNoKey
	}
	byName := make(map[string]int, len(cols))
	for i, c := range cols {
		if c.Name == "" {
			return nil, fmt.Errorf("schema: column %d has empty name", i)
		}
		if !c.Type.Valid() {
			return nil, fmt.Errorf("schema: column %q has invalid type", c.Name)
		}
		if _, dup := byName[c.Name]; dup {
			return nil, fmt.Errorf("%w: %q", ErrDuplicateName, c.Name)
		}
		byName[c.Name] = i
		if c.Default.Type == ltval.Invalid {
			cols[i].Default = ltval.Zero(c.Type)
		} else if c.Default.Type != c.Type {
			return nil, fmt.Errorf("%w: default for %q", ErrTypeMismatch, c.Name)
		}
	}
	s := &Schema{Columns: append([]Column(nil), cols...), Version: 1}
	seen := make(map[int]bool, len(key))
	for _, name := range key {
		i, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("%w: key column %q", ErrUnknownColumn, name)
		}
		if seen[i] {
			return nil, fmt.Errorf("schema: key column %q repeated", name)
		}
		seen[i] = true
		s.Key = append(s.Key, i)
	}
	last := s.Columns[s.Key[len(s.Key)-1]]
	if last.Name != TimestampColumn || last.Type != ltval.Timestamp {
		return nil, ErrBadTimestamp
	}
	return s, nil
}

// MustNew is New but panics on error; for tests and fixed internal tables.
func MustNew(cols []Column, key []string) *Schema {
	s, err := New(cols, key)
	if err != nil {
		panic(err)
	}
	return s
}

// ColumnClass groups column types by their encoded representation, for the
// per-column block codecs: integer-like columns (Int32, Int64, Timestamp)
// delta-encode, Double columns XOR-encode, and byte-like columns (String,
// Blob) dictionary-encode.
type ColumnClass int

// The three codec families a column can belong to.
const (
	ClassInt ColumnClass = iota
	ClassFloat
	ClassBytes
)

// ClassOf maps a value type to its codec family.
func ClassOf(t ltval.Type) ColumnClass {
	switch t {
	case ltval.Double:
		return ClassFloat
	case ltval.String, ltval.Blob:
		return ClassBytes
	default:
		return ClassInt
	}
}

// ColumnClass returns the codec family of column i.
func (s *Schema) ColumnClass(i int) ColumnClass { return ClassOf(s.Columns[i].Type) }

// ColumnIndex returns the index of the named column, or -1.
func (s *Schema) ColumnIndex(name string) int {
	for i, c := range s.Columns {
		if c.Name == name {
			return i
		}
	}
	return -1
}

// TsIndex returns the column index of the timestamp key column.
func (s *Schema) TsIndex() int { return s.Key[len(s.Key)-1] }

// KeyLen returns the number of primary-key columns.
func (s *Schema) KeyLen() int { return len(s.Key) }

// IsKeyColumn reports whether column index i participates in the key.
func (s *Schema) IsKeyColumn(i int) bool {
	for _, k := range s.Key {
		if k == i {
			return true
		}
	}
	return false
}

// KeyNames returns the primary-key column names in key order.
func (s *Schema) KeyNames() []string {
	names := make([]string, len(s.Key))
	for i, k := range s.Key {
		names[i] = s.Columns[k].Name
	}
	return names
}

// Validate checks that row matches the schema in arity and types.
func (s *Schema) Validate(row Row) error {
	if len(row) != len(s.Columns) {
		return fmt.Errorf("%w: got %d columns, want %d", ErrArity, len(row), len(s.Columns))
	}
	for i, v := range row {
		if v.Type != s.Columns[i].Type {
			return fmt.Errorf("%w: column %q got %v, want %v",
				ErrTypeMismatch, s.Columns[i].Name, v.Type, s.Columns[i].Type)
		}
	}
	return nil
}

// Ts returns row's timestamp in microseconds.
func (s *Schema) Ts(row Row) int64 { return row[s.TsIndex()].Int }

// SetTs sets row's timestamp; used when the client omits it and the server
// fills in the current time (§3.1).
func (s *Schema) SetTs(row Row, us int64) { row[s.TsIndex()] = ltval.NewTimestamp(us) }

// CompareKeys orders two rows by primary key. This is the total order of
// the table (§3.1: results are returned in ascending or descending order by
// primary key).
func (s *Schema) CompareKeys(a, b Row) int {
	for _, k := range s.Key {
		if c := a[k].Compare(b[k]); c != 0 {
			return c
		}
	}
	return 0
}

// CompareKeyPrefix compares the first n key columns of a and b.
func (s *Schema) CompareKeyPrefix(a, b Row, n int) int {
	if n > len(s.Key) {
		n = len(s.Key)
	}
	for _, k := range s.Key[:n] {
		if c := a[k].Compare(b[k]); c != 0 {
			return c
		}
	}
	return 0
}

// KeyOf extracts the primary-key values of row, in key order.
func (s *Schema) KeyOf(row Row) []ltval.Value {
	out := make([]ltval.Value, len(s.Key))
	for i, k := range s.Key {
		out[i] = row[k]
	}
	return out
}

// String renders the schema like a CREATE TABLE body.
func (s *Schema) String() string {
	var b strings.Builder
	for i, c := range s.Columns {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s %s", c.Name, c.Type)
	}
	fmt.Fprintf(&b, ", PRIMARY KEY (%s)", strings.Join(s.KeyNames(), ", "))
	return b.String()
}

// Clone returns a deep copy sharing no mutable state.
func (s *Schema) Clone() *Schema {
	c := &Schema{
		Columns: append([]Column(nil), s.Columns...),
		Key:     append([]int(nil), s.Key...),
		Version: s.Version,
	}
	return c
}

// AddColumn returns a new schema with col appended to the tail (§3.5:
// clients can append columns to the tail of a table's schema). Rows written
// under the old schema read back with the column's default value.
func (s *Schema) AddColumn(col Column) (*Schema, error) {
	if s.ColumnIndex(col.Name) >= 0 {
		return nil, fmt.Errorf("%w: %q", ErrDuplicateName, col.Name)
	}
	if !col.Type.Valid() {
		return nil, fmt.Errorf("schema: column %q has invalid type", col.Name)
	}
	if len(s.Columns) >= MaxColumns {
		return nil, ErrTooManyColumns
	}
	if col.Default.Type == ltval.Invalid {
		col.Default = ltval.Zero(col.Type)
	} else if col.Default.Type != col.Type {
		return nil, fmt.Errorf("%w: default for %q", ErrTypeMismatch, col.Name)
	}
	n := s.Clone()
	n.Columns = append(n.Columns, col)
	n.Version++
	return n, nil
}

// WidenColumn returns a new schema with the named int32 column widened to
// int64 (§3.5). Key columns cannot be widened: existing tablets are sorted
// under the old key encoding, and the paper's production schema changes are
// limited to value columns.
func (s *Schema) WidenColumn(name string) (*Schema, error) {
	i := s.ColumnIndex(name)
	if i < 0 {
		return nil, fmt.Errorf("%w: %q", ErrUnknownColumn, name)
	}
	if s.IsKeyColumn(i) {
		return nil, fmt.Errorf("%w: %q", ErrKeyColumn, name)
	}
	if s.Columns[i].Type != ltval.Int32 {
		return nil, fmt.Errorf("%w: %q is %v", ErrNotWidenable, name, s.Columns[i].Type)
	}
	n := s.Clone()
	n.Columns[i].Type = ltval.Int64
	n.Columns[i].Default = n.Columns[i].Default.Widen()
	n.Version++
	return n, nil
}

// Translate converts a row written under schema old to the receiver's
// layout (§3.5): widening int32 cells and filling appended columns with
// defaults. It assumes old is an ancestor of s (same column prefix).
func (s *Schema) Translate(old *Schema, row Row) Row {
	if old.Version == s.Version && len(row) == len(s.Columns) {
		return row
	}
	out := make(Row, len(s.Columns))
	for i := range s.Columns {
		if i < len(row) {
			v := row[i]
			if s.Columns[i].Type == ltval.Int64 && v.Type == ltval.Int32 {
				v = v.Widen()
			}
			out[i] = v
		} else {
			out[i] = s.Columns[i].Default
		}
	}
	return out
}

// DefaultsRow returns a full row of column defaults; callers overwrite the
// cells they have values for.
func (s *Schema) DefaultsRow() Row {
	row := make(Row, len(s.Columns))
	for i, c := range s.Columns {
		row[i] = c.Default
	}
	return row
}

// CloneRow deep-copies a row, including byte-slice cells. Needed when rows
// decoded from a shared buffer must outlive it.
func CloneRow(row Row) Row {
	out := make(Row, len(row))
	for i, v := range row {
		if v.Bytes != nil {
			b := make([]byte, len(v.Bytes))
			copy(b, v.Bytes)
			v.Bytes = b
		}
		out[i] = v
	}
	return out
}
