package schema

import (
	"encoding/json"
	"testing"

	"littletable/internal/ltval"
)

// usageSchema mirrors the paper's running example (§3.1): a table keyed by
// (network, device, ts) storing transfer-rate samples.
func usageSchema(t *testing.T) *Schema {
	t.Helper()
	s, err := New([]Column{
		{Name: "network", Type: ltval.Int64},
		{Name: "device", Type: ltval.Int64},
		{Name: "ts", Type: ltval.Timestamp},
		{Name: "prev_ts", Type: ltval.Timestamp},
		{Name: "counter", Type: ltval.Int64},
		{Name: "rate", Type: ltval.Double},
	}, []string{"network", "device", "ts"})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func usageRow(network, device, ts int64, rate float64) Row {
	return Row{
		ltval.NewInt64(network),
		ltval.NewInt64(device),
		ltval.NewTimestamp(ts),
		ltval.NewTimestamp(ts - 60),
		ltval.NewInt64(0),
		ltval.NewDouble(rate),
	}
}

func TestNewValidation(t *testing.T) {
	ts := Column{Name: "ts", Type: ltval.Timestamp}
	cases := []struct {
		name string
		cols []Column
		key  []string
	}{
		{"no columns", nil, []string{"ts"}},
		{"no key", []Column{ts}, nil},
		{"last key not ts", []Column{{Name: "a", Type: ltval.Int64}, ts}, []string{"ts", "a"}},
		{"ts wrong type", []Column{{Name: "ts", Type: ltval.Int64}}, []string{"ts"}},
		{"duplicate column", []Column{ts, ts}, []string{"ts"}},
		{"unknown key column", []Column{ts}, []string{"nope", "ts"}},
		{"repeated key column", []Column{{Name: "a", Type: ltval.Int64}, ts}, []string{"a", "a", "ts"}},
		{"empty name", []Column{{Name: "", Type: ltval.Int64}, ts}, []string{"ts"}},
		{"invalid type", []Column{{Name: "a"}, ts}, []string{"ts"}},
		{"bad default type", []Column{{Name: "a", Type: ltval.Int64, Default: ltval.NewString("x")}, ts}, []string{"ts"}},
	}
	for _, c := range cases {
		if _, err := New(c.cols, c.key); err == nil {
			t.Errorf("%s: New succeeded, want error", c.name)
		}
	}
}

func TestNewFillsDefaults(t *testing.T) {
	s := usageSchema(t)
	for i, c := range s.Columns {
		if c.Default.Type != c.Type {
			t.Errorf("column %d default type %v, want %v", i, c.Default.Type, c.Type)
		}
	}
}

func TestAccessors(t *testing.T) {
	s := usageSchema(t)
	if s.TsIndex() != 2 {
		t.Errorf("TsIndex = %d, want 2", s.TsIndex())
	}
	if s.KeyLen() != 3 {
		t.Errorf("KeyLen = %d, want 3", s.KeyLen())
	}
	if !s.IsKeyColumn(0) || !s.IsKeyColumn(2) || s.IsKeyColumn(3) {
		t.Error("IsKeyColumn misclassifies columns")
	}
	if s.ColumnIndex("rate") != 5 || s.ColumnIndex("missing") != -1 {
		t.Error("ColumnIndex wrong")
	}
	want := []string{"network", "device", "ts"}
	got := s.KeyNames()
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("KeyNames[%d] = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestValidate(t *testing.T) {
	s := usageSchema(t)
	if err := s.Validate(usageRow(1, 2, 3, 4)); err != nil {
		t.Errorf("valid row rejected: %v", err)
	}
	if err := s.Validate(usageRow(1, 2, 3, 4)[:3]); err == nil {
		t.Error("short row accepted")
	}
	bad := usageRow(1, 2, 3, 4)
	bad[5] = ltval.NewString("oops")
	if err := s.Validate(bad); err == nil {
		t.Error("type-mismatched row accepted")
	}
}

func TestTsAndSetTs(t *testing.T) {
	s := usageSchema(t)
	r := usageRow(1, 2, 100, 0)
	if s.Ts(r) != 100 {
		t.Errorf("Ts = %d, want 100", s.Ts(r))
	}
	s.SetTs(r, 999)
	if s.Ts(r) != 999 {
		t.Errorf("after SetTs, Ts = %d", s.Ts(r))
	}
}

func TestCompareKeys(t *testing.T) {
	s := usageSchema(t)
	a := usageRow(1, 2, 100, 0)
	b := usageRow(1, 2, 200, 0)
	c := usageRow(1, 3, 50, 0)
	d := usageRow(2, 0, 0, 0)
	if s.CompareKeys(a, b) >= 0 {
		t.Error("ts should break ties last")
	}
	if s.CompareKeys(b, c) >= 0 {
		t.Error("device should dominate ts")
	}
	if s.CompareKeys(c, d) >= 0 {
		t.Error("network should dominate device")
	}
	if s.CompareKeys(a, a) != 0 {
		t.Error("row not equal to itself")
	}
	// Value columns must not affect key order.
	e := usageRow(1, 2, 100, 42.0)
	if s.CompareKeys(a, e) != 0 {
		t.Error("value columns leaked into key comparison")
	}
}

func TestCompareKeyPrefix(t *testing.T) {
	s := usageSchema(t)
	a := usageRow(1, 2, 100, 0)
	b := usageRow(1, 3, 100, 0)
	if s.CompareKeyPrefix(a, b, 1) != 0 {
		t.Error("prefix 1 should match")
	}
	if s.CompareKeyPrefix(a, b, 2) >= 0 {
		t.Error("prefix 2 should differ")
	}
	if s.CompareKeyPrefix(a, b, 99) >= 0 {
		t.Error("over-long prefix should clamp to full key")
	}
}

func TestKeyOfAndCompareRowToKey(t *testing.T) {
	s := usageSchema(t)
	r := usageRow(1, 2, 100, 0)
	key := s.KeyOf(r)
	if len(key) != 3 || key[0].Int != 1 || key[1].Int != 2 || key[2].Int != 100 {
		t.Fatalf("KeyOf = %v", key)
	}
	if s.CompareRowToKey(r, key) != 0 {
		t.Error("row != its own key")
	}
	// Prefix key: only network.
	prefix := key[:1]
	if s.CompareRowToKey(r, prefix) != 0 {
		t.Error("row should equal its prefix")
	}
	other := usageRow(2, 0, 0, 0)
	if s.CompareRowToKey(other, prefix) <= 0 {
		t.Error("bigger network should compare greater")
	}
}

func TestCompareKeySlices(t *testing.T) {
	k1 := []ltval.Value{ltval.NewInt64(1)}
	k12 := []ltval.Value{ltval.NewInt64(1), ltval.NewInt64(2)}
	k2 := []ltval.Value{ltval.NewInt64(2)}
	if CompareKeySlices(k1, k12) != -1 {
		t.Error("prefix should sort before extension")
	}
	if CompareKeySlices(k12, k1) != 1 {
		t.Error("extension should sort after prefix")
	}
	if CompareKeySlices(k1, k2) != -1 || CompareKeySlices(k1, k1) != 0 {
		t.Error("basic ordering wrong")
	}
}

func TestRowCodecRoundTrip(t *testing.T) {
	s := usageSchema(t)
	rows := []Row{
		usageRow(1, 2, 100, 1.5),
		usageRow(0, 0, 0, 0),
		usageRow(-1, 1<<60, 1735689600000000, -2.25),
	}
	for _, r := range rows {
		buf := s.AppendRow(nil, r)
		if len(buf) != s.EncodedRowSize(r) {
			t.Errorf("EncodedRowSize = %d, wrote %d", s.EncodedRowSize(r), len(buf))
		}
		got, n, err := s.DecodeRow(buf)
		if err != nil {
			t.Fatal(err)
		}
		if n != len(buf) {
			t.Errorf("consumed %d of %d", n, len(buf))
		}
		for i := range r {
			if !got[i].Equal(r[i]) {
				t.Errorf("column %d: got %v, want %v", i, got[i], r[i])
			}
		}
	}
}

func TestRowCodecWithStrings(t *testing.T) {
	s := MustNew([]Column{
		{Name: "name", Type: ltval.String},
		{Name: "ts", Type: ltval.Timestamp},
		{Name: "payload", Type: ltval.Blob},
	}, []string{"name", "ts"})
	r := Row{ltval.NewString("device-42"), ltval.NewTimestamp(7), ltval.NewBlob([]byte{1, 2, 3})}
	buf := s.AppendRow(nil, r)
	got, _, err := s.DecodeRow(buf)
	if err != nil {
		t.Fatal(err)
	}
	if string(got[0].Bytes) != "device-42" || got[2].Bytes[2] != 3 {
		t.Errorf("string/blob round trip failed: %v", got)
	}
}

func TestKeyCodecRoundTrip(t *testing.T) {
	s := usageSchema(t)
	r := usageRow(5, 6, 700, 0)
	kb := s.AppendKey(nil, r)
	key, err := s.DecodeKey(kb)
	if err != nil {
		t.Fatal(err)
	}
	if CompareKeySlices(key, s.KeyOf(r)) != 0 {
		t.Errorf("key round trip: got %v", key)
	}
	// Trailing garbage must be rejected.
	if _, err := s.DecodeKey(append(kb, 0)); err == nil {
		t.Error("DecodeKey accepted trailing bytes")
	}
}

func TestDecodeRowShort(t *testing.T) {
	s := usageSchema(t)
	buf := s.AppendRow(nil, usageRow(1, 2, 3, 4))
	if _, _, err := s.DecodeRow(buf[:len(buf)-1]); err == nil {
		t.Error("DecodeRow accepted truncated buffer")
	}
}

func TestAddColumn(t *testing.T) {
	s := usageSchema(t)
	s2, err := s.AddColumn(Column{Name: "tag", Type: ltval.String})
	if err != nil {
		t.Fatal(err)
	}
	if s2.Version != s.Version+1 {
		t.Errorf("version = %d, want %d", s2.Version, s.Version+1)
	}
	if len(s.Columns) != 6 {
		t.Error("AddColumn mutated the original schema")
	}
	if s2.ColumnIndex("tag") != 6 {
		t.Error("new column not at tail")
	}
	if _, err := s.AddColumn(Column{Name: "rate", Type: ltval.Double}); err == nil {
		t.Error("duplicate column accepted")
	}
	if _, err := s.AddColumn(Column{Name: "x", Type: ltval.Invalid}); err == nil {
		t.Error("invalid type accepted")
	}
	if _, err := s.AddColumn(Column{Name: "x", Type: ltval.Int32, Default: ltval.NewString("no")}); err == nil {
		t.Error("mismatched default accepted")
	}
}

func TestWidenColumn(t *testing.T) {
	s := MustNew([]Column{
		{Name: "k", Type: ltval.Int32},
		{Name: "ts", Type: ltval.Timestamp},
		{Name: "v", Type: ltval.Int32},
	}, []string{"k", "ts"})
	s2, err := s.WidenColumn("v")
	if err != nil {
		t.Fatal(err)
	}
	if s2.Columns[2].Type != ltval.Int64 {
		t.Error("column not widened")
	}
	if s.Columns[2].Type != ltval.Int32 {
		t.Error("WidenColumn mutated original")
	}
	if _, err := s.WidenColumn("k"); err == nil {
		t.Error("widening a key column accepted")
	}
	if _, err := s.WidenColumn("ts"); err == nil {
		t.Error("widening a timestamp accepted")
	}
	if _, err := s.WidenColumn("missing"); err == nil {
		t.Error("widening a missing column accepted")
	}
	if _, err := s2.WidenColumn("v"); err == nil {
		t.Error("widening an int64 column accepted")
	}
}

func TestTranslate(t *testing.T) {
	old := MustNew([]Column{
		{Name: "k", Type: ltval.Int64},
		{Name: "ts", Type: ltval.Timestamp},
		{Name: "v", Type: ltval.Int32},
	}, []string{"k", "ts"})
	cur, err := old.WidenColumn("v")
	if err != nil {
		t.Fatal(err)
	}
	cur, err = cur.AddColumn(Column{Name: "tag", Type: ltval.String, Default: ltval.NewString("none")})
	if err != nil {
		t.Fatal(err)
	}
	oldRow := Row{ltval.NewInt64(1), ltval.NewTimestamp(2), ltval.NewInt32(3)}
	got := cur.Translate(old, oldRow)
	if len(got) != 4 {
		t.Fatalf("translated row has %d columns", len(got))
	}
	if got[2].Type != ltval.Int64 || got[2].Int != 3 {
		t.Errorf("widened cell = %v", got[2])
	}
	if string(got[3].Bytes) != "none" {
		t.Errorf("default fill = %v", got[3])
	}
	// Same version short-circuits.
	cr := cur.DefaultsRow()
	if len(cur.Translate(cur, cr)) != 4 {
		t.Error("identity translate wrong arity")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	s := usageSchema(t)
	s.Version = 7
	b, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	var got Schema
	if err := json.Unmarshal(b, &got); err != nil {
		t.Fatal(err)
	}
	if got.Version != 7 || len(got.Columns) != 6 || got.KeyLen() != 3 {
		t.Errorf("round trip: %+v", got)
	}
	for i := range s.Columns {
		if got.Columns[i].Name != s.Columns[i].Name || got.Columns[i].Type != s.Columns[i].Type {
			t.Errorf("column %d mismatch", i)
		}
	}
}

func TestJSONRoundTripWithDefaults(t *testing.T) {
	s := MustNew([]Column{
		{Name: "k", Type: ltval.String},
		{Name: "ts", Type: ltval.Timestamp},
		{Name: "n", Type: ltval.Int64, Default: ltval.NewInt64(-1)},
		{Name: "f", Type: ltval.Double, Default: ltval.NewDouble(1.5)},
		{Name: "s", Type: ltval.String, Default: ltval.NewString("d")},
		{Name: "b", Type: ltval.Blob, Default: ltval.NewBlob([]byte{9})},
	}, []string{"k", "ts"})
	b, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	var got Schema
	if err := json.Unmarshal(b, &got); err != nil {
		t.Fatal(err)
	}
	if got.Columns[2].Default.Int != -1 {
		t.Errorf("int default = %v", got.Columns[2].Default)
	}
	if got.Columns[3].Default.Float != 1.5 {
		t.Errorf("double default = %v", got.Columns[3].Default)
	}
	if string(got.Columns[4].Default.Bytes) != "d" {
		t.Errorf("string default = %v", got.Columns[4].Default)
	}
	if got.Columns[5].Default.Bytes[0] != 9 {
		t.Errorf("blob default = %v", got.Columns[5].Default)
	}
}

func TestJSONRejectsBadSchema(t *testing.T) {
	var s Schema
	if err := json.Unmarshal([]byte(`{"columns":[{"name":"a","type":"int64"}],"key":["a"]}`), &s); err == nil {
		t.Error("schema without ts key accepted")
	}
	if err := json.Unmarshal([]byte(`{"columns":[{"name":"a","type":"nosuch"}],"key":["a"]}`), &s); err == nil {
		t.Error("unknown type accepted")
	}
}

func TestCloneRowIndependence(t *testing.T) {
	r := Row{ltval.NewString("abc"), ltval.NewTimestamp(1)}
	c := CloneRow(r)
	r[0].Bytes[0] = 'X'
	if string(c[0].Bytes) != "abc" {
		t.Error("CloneRow shares byte storage")
	}
}

func TestSchemaString(t *testing.T) {
	s := usageSchema(t)
	want := "network int64, device int64, ts timestamp, prev_ts timestamp, counter int64, rate double, PRIMARY KEY (network, device, ts)"
	if got := s.String(); got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

func TestDefaultsRow(t *testing.T) {
	s := usageSchema(t)
	r := s.DefaultsRow()
	if err := s.Validate(r); err != nil {
		t.Errorf("defaults row invalid: %v", err)
	}
}
