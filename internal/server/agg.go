package server

import (
	"math"
	"sort"
	"strings"

	"littletable/internal/agg"
	"littletable/internal/core"
	"littletable/internal/wire"
)

// DefaultMaxAggGroups caps the groups one aggregation query may
// accumulate when the client does not set its own cap; it bounds the
// O(groups) server memory the same way QueryRowLimit bounds a row scan.
const DefaultMaxAggGroups = 65536

// handleAggQuery folds every matching local table's rows into
// (time-bucket × key-prefix) group states as the merge-sorted cursor
// yields them, and answers with partial aggregates only — the raw rows
// never leave the server. The router sends the same message to every
// shard and merges the partials; a single-shard client gets identical
// semantics directly.
func (s *Server) handleAggQuery(wc *wire.Conn, payload []byte) error {
	m, err := wire.DecodeAggQuery(payload)
	if err != nil {
		return err
	}
	names := s.TableNames()
	sort.Strings(names)
	matched := names[:0]
	for _, n := range names {
		if strings.HasPrefix(n, m.Prefix) {
			matched = append(matched, n)
		}
	}
	resp := &wire.AggResult{Spec: m.Spec}
	if m.MaxTables > 0 && len(matched) > int(m.MaxTables) {
		matched = matched[:m.MaxTables]
		resp.Truncated = true
	}
	maxGroups := int(m.MaxGroups)
	if maxGroups <= 0 {
		maxGroups = DefaultMaxAggGroups
	}
	q := core.Query{MinTs: m.MinTs, MaxTs: m.MaxTs}
	if m.MinTs == 0 && m.MaxTs == 0 {
		// An unset window means all time. Engine bounds are inclusive, so
		// taking the zero values literally would match only the single
		// microsecond 0 and silently fold nothing.
		q.MinTs, q.MaxTs = math.MinInt64, math.MaxInt64
	}
	total := 0
	for _, name := range matched {
		t, err := s.Table(name)
		if err != nil {
			// Dropped between listing and scan; an agg result is a
			// snapshot, not a transaction. Skip it.
			continue
		}
		if total >= maxGroups {
			resp.Truncated = true
			break
		}
		acc, err := agg.NewAccumulator(t.Schema(), m.Spec)
		if err != nil {
			// The spec doesn't fit this table's schema. Prefix matching
			// assumes same-shaped tables by convention (§2.2); a
			// differently shaped namesake is skipped, not fatal —
			// mirroring scatter's ErrBadQuery handling.
			continue
		}
		it, err := t.QueryCtx(s.baseCtx, q)
		if err != nil {
			return s.sendErr(wc, err)
		}
		for it.Next() {
			acc.Add(it.Row())
			if total+acc.NumGroups() > maxGroups {
				// Stop folding: the groups so far are still valid
				// partials, but coverage is incomplete.
				resp.Truncated = true
				break
			}
		}
		scanErr := it.Err()
		it.Close()
		if scanErr != nil {
			return s.sendErr(wc, scanErr)
		}
		t.Stats().AggQueries.Add(1)
		t.Stats().AggRowsFolded.Add(acc.Rows())
		resp.RowsFolded += acc.Rows()
		groups := acc.Groups()
		total += len(groups)
		if m.WantPartials {
			resp.Tables = append(resp.Tables, wire.AggTablePartial{Table: name, Groups: groups})
		}
		resp.Groups = agg.MergeGroups(m.Spec, resp.Groups, groups)
	}
	return wc.WriteMsg(wire.MsgAggResult, resp.Encode())
}
