package server

import (
	"errors"
	"fmt"
	"io"
	"net"
	"time"

	"littletable/internal/core"
	"littletable/internal/schema"
	"littletable/internal/wire"
)

// timeoutConn arms a fresh deadline before every Read and Write, so a
// stalled peer (half-open TCP, a client that stopped reading its results)
// is dropped instead of pinning a handler goroutine forever. Zero timeouts
// disable the corresponding deadline.
type timeoutConn struct {
	net.Conn
	readTimeout  time.Duration
	writeTimeout time.Duration
}

func (c *timeoutConn) Read(p []byte) (int, error) {
	if c.readTimeout > 0 {
		if err := c.Conn.SetReadDeadline(time.Now().Add(c.readTimeout)); err != nil {
			return 0, err
		}
	}
	return c.Conn.Read(p)
}

func (c *timeoutConn) Write(p []byte) (int, error) {
	if c.writeTimeout > 0 {
		if err := c.Conn.SetWriteDeadline(time.Now().Add(c.writeTimeout)); err != nil {
			return 0, err
		}
	}
	return c.Conn.Write(p)
}

// isTimeout reports whether err is a deadline expiry.
func isTimeout(err error) bool {
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}

// handleConn serves one client session: a loop of request/response pairs.
// The client keeps the connection persistent to detect server crashes
// (§3.1). The connState's busy flag brackets each request so Shutdown can
// wait for in-flight responses without pinning idle connections.
func (s *Server) handleConn(conn net.Conn, st *connState) {
	defer conn.Close()
	wc := wire.NewConn(&timeoutConn{
		Conn:         conn,
		readTimeout:  s.opts.ReadTimeout,
		writeTimeout: s.opts.WriteTimeout,
	})
	wc.SetReadLimit(s.opts.MaxRequestBytes)
	for {
		mt, payload, err := wc.ReadMsg()
		if err != nil {
			switch {
			case errors.Is(err, io.EOF), errors.Is(err, net.ErrClosed):
			case isTimeout(err):
				s.stats.ConnsDroppedDeadline.Add(1)
				s.opts.Logf("littletable: dropping %s: read deadline expired", conn.RemoteAddr())
			case errors.Is(err, wire.ErrFrameTooBig):
				s.stats.ConnsDroppedOversize.Add(1)
				s.opts.Logf("littletable: dropping %s: oversized request frame", conn.RemoteAddr())
			default:
				s.opts.Logf("littletable: read: %v", err)
			}
			return
		}
		st.busy.Store(true)
		err = s.serveRequest(wc, mt, payload)
		st.busy.Store(false)
		if err != nil {
			// Transport errors end the session; request errors were already
			// reported to the client inline.
			if isTimeout(err) {
				s.stats.ConnsDroppedDeadline.Add(1)
				s.opts.Logf("littletable: dropping %s: write deadline expired", conn.RemoteAddr())
			} else {
				s.opts.Logf("littletable: conn: %v", err)
			}
			return
		}
		if s.draining.Load() {
			// The response above completed; end the session so Shutdown
			// converges. The client's pool sees a clean close between
			// requests, never a truncated response.
			return
		}
	}
}

// serveRequest applies the admission gate, then dispatches. Beyond
// MaxInFlight the request is refused with a wire-level Overloaded reply —
// distinct from MsgError because it promises the request was NOT
// processed, making a backoff-and-retry safe even for inserts.
func (s *Server) serveRequest(wc *wire.Conn, mt wire.MsgType, payload []byte) error {
	n := s.stats.RequestsInFlight.Add(1)
	defer s.stats.RequestsInFlight.Add(-1)
	if max := s.opts.MaxInFlight; max > 0 && n > int64(max) {
		s.stats.RequestsShed.Add(1)
		m := &wire.ErrorMsg{Message: "server: overloaded, request shed; back off and retry"}
		return wc.WriteMsg(wire.MsgOverloaded, m.Encode())
	}
	return s.dispatch(wc, mt, payload)
}

func (s *Server) sendErr(wc *wire.Conn, err error) error {
	m := &wire.ErrorMsg{Message: err.Error()}
	return wc.WriteMsg(wire.MsgError, m.Encode())
}

func (s *Server) sendOK(wc *wire.Conn) error {
	return wc.WriteMsg(wire.MsgOK, nil)
}

func (s *Server) dispatch(wc *wire.Conn, mt wire.MsgType, payload []byte) error {
	switch mt {
	case wire.MsgHello:
		h, err := wire.DecodeHello(payload)
		if err != nil {
			return err
		}
		if h.Version != wire.ProtocolVersion {
			return s.sendErr(wc, fmt.Errorf("server: protocol version %d unsupported", h.Version))
		}
		return s.sendOK(wc)

	case wire.MsgListTables:
		m := &wire.TableList{Names: s.TableNames()}
		return wc.WriteMsg(wire.MsgTableList, m.Encode())

	case wire.MsgCreateTable:
		m, err := wire.DecodeCreateTable(payload)
		if err != nil {
			return err
		}
		if _, err := s.CreateTable(m.Name, m.Schema, m.TTL); err != nil {
			return s.sendErr(wc, err)
		}
		return s.sendOK(wc)

	case wire.MsgDropTable:
		m, err := wire.DecodeTableName(payload)
		if err != nil {
			return err
		}
		if err := s.DropTable(m.Name); err != nil {
			return s.sendErr(wc, err)
		}
		return s.sendOK(wc)

	case wire.MsgGetSchema:
		m, err := wire.DecodeTableName(payload)
		if err != nil {
			return err
		}
		t, err := s.Table(m.Name)
		if err != nil {
			return s.sendErr(wc, err)
		}
		resp := &wire.SchemaResp{Schema: t.Schema(), TTL: t.TTL()}
		b, err := resp.Encode()
		if err != nil {
			return err
		}
		return wc.WriteMsg(wire.MsgSchema, b)

	case wire.MsgInsert:
		return s.handleInsert(wc, payload)

	case wire.MsgQuery:
		return s.handleQuery(wc, payload)

	case wire.MsgLatestRow:
		return s.handleLatestRow(wc, payload)

	case wire.MsgAlterTTL:
		m, err := wire.DecodeAlterTTL(payload)
		if err != nil {
			return err
		}
		t, err := s.Table(m.Table)
		if err != nil {
			return s.sendErr(wc, err)
		}
		if err := t.AlterTTL(m.TTL); err != nil {
			return s.sendErr(wc, err)
		}
		return s.sendOK(wc)

	case wire.MsgAddColumn:
		m, err := wire.DecodeAddColumn(payload)
		if err != nil {
			return err
		}
		t, err := s.Table(m.Table)
		if err != nil {
			return s.sendErr(wc, err)
		}
		col := schema.Column{Name: m.Name, Type: m.Type, Default: m.Default}
		if err := t.AddColumn(col); err != nil {
			return s.sendErr(wc, err)
		}
		return s.sendOK(wc)

	case wire.MsgWidenColumn:
		m, err := wire.DecodeWidenColumn(payload)
		if err != nil {
			return err
		}
		t, err := s.Table(m.Table)
		if err != nil {
			return s.sendErr(wc, err)
		}
		if err := t.WidenColumn(m.Name); err != nil {
			return s.sendErr(wc, err)
		}
		return s.sendOK(wc)

	case wire.MsgFlushTable:
		// The explicit flush command §4.1.2 proposes so aggregators can
		// know their source data reached disk.
		m, err := wire.DecodeTableName(payload)
		if err != nil {
			return err
		}
		t, err := s.Table(m.Name)
		if err != nil {
			return s.sendErr(wc, err)
		}
		if err := t.FlushAll(); err != nil {
			return s.sendErr(wc, err)
		}
		return s.sendOK(wc)

	case wire.MsgDelete:
		m, err := wire.DecodeDelete(payload)
		if err != nil {
			return err
		}
		t, err := s.Table(m.Table)
		if err != nil {
			return s.sendErr(wc, err)
		}
		q := core.Query{
			LowerInc: m.LowerInc, UpperInc: m.UpperInc,
			MinTs: m.MinTs, MaxTs: m.MaxTs,
		}
		if m.HasLower {
			q.Lower = m.Lower
		}
		if m.HasUpper {
			q.Upper = m.Upper
		}
		n, err := t.DeleteWhere(q, nil)
		if err != nil {
			return s.sendErr(wc, err)
		}
		resp := &wire.DeleteResult{Deleted: n}
		return wc.WriteMsg(wire.MsgDeleteResult, resp.Encode())

	case wire.MsgStats:
		m, err := wire.DecodeTableName(payload)
		if err != nil {
			return err
		}
		t, err := s.Table(m.Name)
		if err != nil {
			return s.sendErr(wc, err)
		}
		st := t.Stats().Snapshot()
		resp := &wire.StatsResult{
			RowsInserted:   st.RowsInserted,
			RowsReturned:   st.RowsReturned,
			RowsScanned:    st.RowsScanned,
			Queries:        st.Queries,
			DiskTablets:    int64(t.DiskTabletCount()),
			DiskBytes:      t.DiskBytes(),
			MemTablets:     int64(t.MemTabletCount()),
			TabletsFlushed: st.TabletsFlushed,
			Merges:         st.Merges,
			BytesFlushed:   st.BytesFlushed,
			BytesMerged:    st.BytesMerged,
			RowsRewritten:  st.RowsRewritten,
			RowEstimate:    t.RowEstimate(),
			TabletsExpired: st.TabletsExpired,

			UniqueFastNew: st.UniqueFastNew,
			UniqueFastKey: st.UniqueFastKey,
			UniqueBloom:   st.UniqueBloom,
			UniqueProbes:  st.UniqueProbes,

			TabletsQuarantined: st.TabletsQuarantined,
			FlushFailures:      st.FlushFailures,
			MergeFailures:      st.MergeFailures,
			MergeRetries:       st.MergeRetries,
			FaultRecoveries:    st.FaultRecoveries,
			ReadErrors:         st.ReadErrors,

			BlocksRead:    st.BlocksRead,
			PrefetchHits:  st.PrefetchHits,
			ParallelOpens: st.ParallelOpens,

			InsertBatches:      st.InsertBatches,
			GroupCommits:       st.GroupCommits,
			TabletsSealed:      st.TabletsSealed,
			AsyncFlushes:       st.AsyncFlushes,
			SealedBytes:        t.SealedBytes(),
			FlushQueueDepth:    int64(t.FlushQueueDepth()),
			BackpressureStalls: st.BackpressureStalls,
			CommitFailures:     st.CommitFailures,
			RowsLost:           st.RowsLost,

			MergesInFlight:            st.MergesInFlight,
			MergeWaitNs:               st.MergeWaitNs,
			ExpiriesInFlight:          st.ExpiriesInFlight,
			ExpiryWaitNs:              st.ExpiryWaitNs,
			ExpiryRuns:                st.ExpiryRuns,
			MaintenanceBytesThrottled: st.MaintenanceBytesThrottled,
			MaintenanceThrottleNs:     st.MaintenanceThrottleNs,

			TabletsInstalled: st.TabletsInstalled,
			BytesInstalled:   st.BytesInstalled,

			BlocksEncoded:         st.BlocksEncoded,
			BlocksEncodedColumnar: st.BlocksEncodedColumnar,
			BytesBeforeEncode:     st.BytesBeforeEncode,
			BytesAfterEncode:      st.BytesAfterEncode,
			ColumnsDeltaEncoded:   st.ColumnsDeltaEncoded,
			ColumnsXOREncoded:     st.ColumnsXOREncoded,
			ColumnsDictEncoded:    st.ColumnsDictEncoded,
			ColumnsPlainEncoded:   st.ColumnsPlainEncoded,

			AggQueries:        st.AggQueries,
			AggRowsFolded:     st.AggRowsFolded,
			RollupRuns:        st.RollupRuns,
			RollupRowsWritten: st.RollupRowsWritten,
		}
		resp.BlockCacheHits, resp.BlockCacheMisses = t.BlockCacheStats()
		return wc.WriteMsg(wire.MsgStatsResult, resp.Encode())

	case wire.MsgServerStats:
		resp := s.serverStatsResult()
		return wc.WriteMsg(wire.MsgServerStatsResult, resp.Encode())

	case wire.MsgScatterQuery:
		return s.handleScatterQuery(wc, payload)

	case wire.MsgAggQuery:
		return s.handleAggQuery(wc, payload)

	case wire.MsgMigrateBegin:
		return s.handleMigrateBegin(wc, payload)

	case wire.MsgMigrateFetch:
		return s.handleMigrateFetch(wc, payload)

	case wire.MsgMigrateEnd:
		return s.handleMigrateEnd(wc, payload)

	case wire.MsgMigrateInstall:
		return s.handleMigrateInstall(wc, payload)

	default:
		return s.sendErr(wc, fmt.Errorf("server: unknown message type %d", mt))
	}
}

func (s *Server) handleInsert(wc *wire.Conn, payload []byte) error {
	m, d, err := wire.DecodeInsertHeader(payload)
	if err != nil {
		return err
	}
	t, err := s.Table(m.Table)
	if err != nil {
		return s.sendErr(wc, err)
	}
	sc := t.Schema()
	if m.SchemaVersion != sc.Version {
		return s.sendErr(wc, fmt.Errorf("server: stale schema version %d (current %d); refresh",
			m.SchemaVersion, sc.Version))
	}
	if err := m.FinishDecode(d, sc); err != nil {
		return s.sendErr(wc, err)
	}
	if m.ServerTimestamps {
		now := serverNow(t)
		for _, row := range m.Rows {
			if sc.Ts(row) == 0 {
				sc.SetTs(row, now)
			}
		}
	}
	if err := t.Insert(m.Rows); err != nil {
		return s.sendErr(wc, err)
	}
	return s.sendOK(wc)
}

func serverNow(t *core.Table) int64 {
	return t.Now()
}

func (s *Server) handleQuery(wc *wire.Conn, payload []byte) error {
	m, err := wire.DecodeQuery(payload)
	if err != nil {
		return err
	}
	t, err := s.Table(m.Table)
	if err != nil {
		return s.sendErr(wc, err)
	}
	q := core.Query{
		LowerInc:   m.LowerInc,
		UpperInc:   m.UpperInc,
		MinTs:      m.MinTs,
		MaxTs:      m.MaxTs,
		Descending: m.Descending,
	}
	if m.HasLower {
		q.Lower = m.Lower
	}
	if m.HasUpper {
		q.Upper = m.Upper
	}
	// The server enforces its own row limit and sets a more-available flag
	// when it hits it (§3.5).
	limit := s.opts.QueryRowLimit
	if m.Limit > 0 && int(m.Limit) < limit {
		limit = int(m.Limit)
	}
	it, err := t.QueryCtx(s.baseCtx, q)
	if err != nil {
		return s.sendErr(wc, err)
	}
	defer it.Close()
	sc := t.Schema()
	resp := &wire.Rows{SchemaVersion: sc.Version}
	for len(resp.Rows) < limit && it.Next() {
		resp.Rows = append(resp.Rows, schema.CloneRow(it.Row()))
	}
	if err := it.Err(); err != nil {
		return s.sendErr(wc, err)
	}
	if len(resp.Rows) == limit && it.Next() {
		resp.More = true
	}
	return wc.WriteMsg(wire.MsgRows, resp.Encode(sc))
}

func (s *Server) handleLatestRow(wc *wire.Conn, payload []byte) error {
	m, err := wire.DecodeLatestRow(payload)
	if err != nil {
		return err
	}
	t, err := s.Table(m.Table)
	if err != nil {
		return s.sendErr(wc, err)
	}
	row, found, err := t.LatestRow(m.Prefix)
	if err != nil {
		return s.sendErr(wc, err)
	}
	resp := &wire.RowResult{Found: found, Row: row}
	return wc.WriteMsg(wire.MsgRowResult, resp.Encode(t.Schema()))
}
