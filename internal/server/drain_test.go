package server

import (
	"context"
	"errors"
	"io"
	"net"
	"sync"
	"syscall"
	"testing"
	"time"

	"littletable/internal/wire"
)

// onlyConnState returns the connState of the server's single registered
// connection, waiting briefly for the accept goroutine to register it.
func onlyConnState(t *testing.T, s *Server) *connState {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		s.mu.Lock()
		if len(s.conns) == 1 {
			for _, st := range s.conns {
				s.mu.Unlock()
				return st
			}
		}
		s.mu.Unlock()
		time.Sleep(time.Millisecond)
	}
	t.Fatal("connection never registered")
	return nil
}

func dialWire(t *testing.T, addr net.Addr) (net.Conn, *wire.Conn) {
	t.Helper()
	conn, err := net.Dial("tcp", addr.String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	conn.SetDeadline(time.Now().Add(10 * time.Second))
	return conn, wire.NewConn(conn)
}

func TestShutdownClosesIdleConns(t *testing.T) {
	s := newServer(t, t.TempDir())
	addr := serveTCP(t, s)
	conn, wc := dialWire(t, addr)
	h := &wire.Hello{Version: wire.ProtocolVersion}
	if err := wc.WriteMsg(wire.MsgHello, h.Encode()); err != nil {
		t.Fatal(err)
	}
	if mt, _, err := wc.ReadMsg(); err != nil || mt != wire.MsgOK {
		t.Fatalf("hello: type %d, err %v", mt, err)
	}

	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	// The idle connection was closed cleanly between requests.
	if _, err := conn.Read(make([]byte, 1)); err != io.EOF {
		t.Fatalf("idle conn after Shutdown: want EOF, got %v", err)
	}
	if s.Stats().DrainNs.Load() <= 0 {
		t.Fatal("DrainNs not recorded")
	}
	// Shutdown ends in Close; the server refuses further use.
	if _, err := s.Table("nope"); !errors.Is(err, ErrClosed) {
		t.Fatalf("after Shutdown: %v", err)
	}
}

func TestShutdownWaitsForBusyConn(t *testing.T) {
	s := newServer(t, t.TempDir())
	addr := serveTCP(t, s)
	_, wc := dialWire(t, addr)
	h := &wire.Hello{Version: wire.ProtocolVersion}
	if err := wc.WriteMsg(wire.MsgHello, h.Encode()); err != nil {
		t.Fatal(err)
	}
	if mt, _, err := wc.ReadMsg(); err != nil || mt != wire.MsgOK {
		t.Fatalf("hello: type %d, err %v", mt, err)
	}

	// Pin the connection busy, as if a request were mid-dispatch.
	st := onlyConnState(t, s)
	st.busy.Store(true)

	done := make(chan error, 1)
	go func() { done <- s.Shutdown(context.Background()) }()

	select {
	case err := <-done:
		t.Fatalf("Shutdown returned %v while a conn was busy", err)
	case <-time.After(100 * time.Millisecond):
	}
	if !s.draining.Load() {
		t.Fatal("draining flag not set during Shutdown")
	}

	// Request finishes; the drain loop may now close the idle conn.
	st.busy.Store(false)
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Shutdown: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Shutdown never completed after conn went idle")
	}
}

func TestShutdownDeadlineExpires(t *testing.T) {
	s := newServer(t, t.TempDir())
	addr := serveTCP(t, s)
	_, wc := dialWire(t, addr)
	h := &wire.Hello{Version: wire.ProtocolVersion}
	if err := wc.WriteMsg(wire.MsgHello, h.Encode()); err != nil {
		t.Fatal(err)
	}
	if mt, _, err := wc.ReadMsg(); err != nil || mt != wire.MsgOK {
		t.Fatalf("hello: type %d, err %v", mt, err)
	}
	st := onlyConnState(t, s)
	st.busy.Store(true) // never finishes

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	// The conn stays busy forever; handleConn is parked in ReadMsg, so once
	// the deadline fires Shutdown falls through to Close, which hard-closes
	// it. Unpin busy afterward so nothing lingers.
	defer st.busy.Store(false)
	if err := s.Shutdown(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Shutdown past deadline: %v", err)
	}
}

// TestShutdownNeverTruncatesResponses races Shutdown against an in-flight
// request many times: the client must observe either a complete response
// or a clean EOF with no bytes — never a partial frame.
func TestShutdownNeverTruncatesResponses(t *testing.T) {
	for i := 0; i < 30; i++ {
		s := newServer(t, t.TempDir())
		addr := serveTCP(t, s)
		_, wc := dialWire(t, addr)
		if err := wc.WriteMsg(wire.MsgListTables, nil); err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			s.Shutdown(context.Background())
		}()
		mt, _, err := wc.ReadMsg()
		switch {
		case err == nil && mt == wire.MsgTableList:
			// Completed before the drain closed the conn.
		case errors.Is(err, io.EOF), errors.Is(err, syscall.ECONNRESET):
			// Closed while idle, before the request was picked up: the
			// request is cleanly unacknowledged, nothing partial. A close
			// with the request still unread in the server's receive buffer
			// surfaces as a reset rather than EOF.
		default:
			t.Fatalf("iteration %d: truncated or garbled response: type %d, err %v", i, mt, err)
		}
		wg.Wait()
	}
}

func TestShutdownConcurrentCallsConverge(t *testing.T) {
	s := newServer(t, t.TempDir())
	serveTCP(t, s)
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			if err := s.Shutdown(ctx); err != nil {
				t.Errorf("Shutdown: %v", err)
			}
		}()
	}
	wg.Wait()
}

func TestMaxInFlightSheds(t *testing.T) {
	s, err := New(Options{
		Root:        t.TempDir(),
		MaxInFlight: 1,
		Logf:        t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	addr := serveTCP(t, s)
	_, wc := dialWire(t, addr)

	// Occupy the only admission slot, as a concurrent request would.
	s.stats.RequestsInFlight.Add(1)
	if err := wc.WriteMsg(wire.MsgListTables, nil); err != nil {
		t.Fatal(err)
	}
	mt, payload, err := wc.ReadMsg()
	if err != nil {
		t.Fatal(err)
	}
	if mt != wire.MsgOverloaded {
		t.Fatalf("over the gate: got type %d, want MsgOverloaded", mt)
	}
	if m, err := wire.DecodeErrorMsg(payload); err != nil || m.Message == "" {
		t.Fatalf("overloaded payload: %v, %v", m, err)
	}
	if got := s.Stats().RequestsShed.Load(); got != 1 {
		t.Fatalf("RequestsShed = %d, want 1", got)
	}

	// The gate frees up; the same connection works again.
	s.stats.RequestsInFlight.Add(-1)
	if err := wc.WriteMsg(wire.MsgListTables, nil); err != nil {
		t.Fatal(err)
	}
	if mt, _, err := wc.ReadMsg(); err != nil || mt != wire.MsgTableList {
		t.Fatalf("after gate freed: type %d, err %v", mt, err)
	}
}

func TestServerStatsOverWire(t *testing.T) {
	s := newServer(t, t.TempDir())
	addr := serveTCP(t, s)
	_, wc := dialWire(t, addr)
	if err := wc.WriteMsg(wire.MsgServerStats, nil); err != nil {
		t.Fatal(err)
	}
	mt, payload, err := wc.ReadMsg()
	if err != nil || mt != wire.MsgServerStatsResult {
		t.Fatalf("server stats: type %d, err %v", mt, err)
	}
	res, err := wire.DecodeServerStatsResult(payload)
	if err != nil {
		t.Fatal(err)
	}
	if res.ConnsActive != 1 {
		t.Errorf("ConnsActive = %d, want 1", res.ConnsActive)
	}
	// The gauge includes the stats request itself.
	if res.RequestsInFlight < 1 {
		t.Errorf("RequestsInFlight = %d, want >= 1", res.RequestsInFlight)
	}
	if res.Draining != 0 {
		t.Errorf("Draining = %d, want 0", res.Draining)
	}
}
