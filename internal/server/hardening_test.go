package server

import (
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"littletable/internal/wire"
)

// serveTCP starts s on a loopback listener and returns its address.
func serveTCP(t *testing.T, s *Server) net.Addr {
	t.Helper()
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go s.Serve(lis)
	return lis.Addr()
}

func TestReadDeadlineDropsIdleConn(t *testing.T) {
	s, err := New(Options{
		Root:        t.TempDir(),
		ReadTimeout: 50 * time.Millisecond,
		Logf:        t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	addr := serveTCP(t, s)

	conn, err := net.Dial("tcp", addr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Say nothing; the server should hang up once the read deadline expires.
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := conn.Read(make([]byte, 1)); err != io.EOF {
		t.Fatalf("expected server to close the idle connection, got %v", err)
	}
	if got := s.Stats().ConnsDroppedDeadline.Load(); got != 1 {
		t.Fatalf("ConnsDroppedDeadline = %d, want 1", got)
	}
}

func TestOversizedFrameDropsConn(t *testing.T) {
	s, err := New(Options{
		Root:            t.TempDir(),
		MaxRequestBytes: 1024,
		Logf:            t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	addr := serveTCP(t, s)

	conn, err := net.Dial("tcp", addr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	wc := wire.NewConn(conn)
	// A frame over the server's limit but under the protocol maximum: legal
	// on the wire, rejected by this server's configuration.
	if err := wc.WriteMsg(wire.MsgHello, make([]byte, 4096)); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := conn.Read(make([]byte, 1)); err != io.EOF {
		t.Fatalf("expected server to drop the oversized frame, got %v", err)
	}
	if got := s.Stats().ConnsDroppedOversize.Load(); got != 1 {
		t.Fatalf("ConnsDroppedOversize = %d, want 1", got)
	}

	// The drop shows up on the metrics endpoint, without a table label.
	hs := httptest.NewServer(s.MetricsHandler())
	defer hs.Close()
	resp, err := http.Get(hs.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	text := string(body)
	for _, want := range []string{
		"littletable_conns_dropped_oversize_total 1",
		"littletable_conns_dropped_deadline_total 0",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q in:\n%s", want, text)
		}
	}
}

func TestNormalConnUnaffectedByLimits(t *testing.T) {
	s, err := New(Options{
		Root:            t.TempDir(),
		ReadTimeout:     2 * time.Second,
		WriteTimeout:    2 * time.Second,
		MaxRequestBytes: 1 << 20,
		Logf:            t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	addr := serveTCP(t, s)

	conn, err := net.Dial("tcp", addr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	wc := wire.NewConn(conn)
	h := &wire.Hello{Version: wire.ProtocolVersion}
	if err := wc.WriteMsg(wire.MsgHello, h.Encode()); err != nil {
		t.Fatal(err)
	}
	mt, _, err := wc.ReadMsg()
	if err != nil || mt != wire.MsgOK {
		t.Fatalf("hello under limits: type %d, err %v", mt, err)
	}
	if d := s.Stats().ConnsDroppedDeadline.Load() + s.Stats().ConnsDroppedOversize.Load(); d != 0 {
		t.Fatalf("spurious drops: %d", d)
	}
}
