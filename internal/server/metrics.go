package server

import (
	"fmt"
	"io"
	"net/http"
	"sort"

	"littletable/internal/core"
)

// WriteMetrics renders every table's counters in the Prometheus text
// exposition format, for the daemon's optional /metrics endpoint. Meraki
// monitors shard load to decide splits (§2.2); these are the numbers that
// decision needs.
func (s *Server) WriteMetrics(w io.Writer) {
	tables := s.snapshotTables()
	sort.Slice(tables, func(i, j int) bool { return tables[i].Name() < tables[j].Name() })
	snaps := make([]core.StatsSnapshot, len(tables))
	for i, t := range tables {
		snaps[i] = t.Stats().Snapshot()
	}

	type metric struct {
		name, help, typ string
		value           func(i int) int64
	}
	metrics := []metric{
		{"littletable_rows_inserted_total", "Rows inserted", "counter",
			func(i int) int64 { return snaps[i].RowsInserted }},
		{"littletable_rows_returned_total", "Rows returned to queries", "counter",
			func(i int) int64 { return snaps[i].RowsReturned }},
		{"littletable_rows_scanned_total", "Rows scanned by queries", "counter",
			func(i int) int64 { return snaps[i].RowsScanned }},
		{"littletable_queries_total", "Queries executed", "counter",
			func(i int) int64 { return snaps[i].Queries }},
		{"littletable_tablets_flushed_total", "Memtables flushed to disk tablets", "counter",
			func(i int) int64 { return snaps[i].TabletsFlushed }},
		{"littletable_merges_total", "Tablet merges performed", "counter",
			func(i int) int64 { return snaps[i].Merges }},
		{"littletable_rows_rewritten_total", "Rows rewritten by merges", "counter",
			func(i int) int64 { return snaps[i].RowsRewritten }},
		{"littletable_unique_fast_newest_total", "Uniqueness via newest-timestamp fast path", "counter",
			func(i int) int64 { return snaps[i].UniqueFastNew }},
		{"littletable_unique_fast_key_total", "Uniqueness via largest-key fast path", "counter",
			func(i int) int64 { return snaps[i].UniqueFastKey }},
		{"littletable_unique_bloom_total", "Uniqueness resolved by Bloom filters alone", "counter",
			func(i int) int64 { return snaps[i].UniqueBloom }},
		{"littletable_unique_probes_total", "Uniqueness requiring a point read", "counter",
			func(i int) int64 { return snaps[i].UniqueProbes }},
		{"littletable_bytes_flushed_total", "Bytes written by flushes", "counter",
			func(i int) int64 { return snaps[i].BytesFlushed }},
		{"littletable_bytes_merged_total", "Bytes written by merges", "counter",
			func(i int) int64 { return snaps[i].BytesMerged }},
		{"littletable_tablets_expired_total", "Tablets reclaimed by TTL", "counter",
			func(i int) int64 { return snaps[i].TabletsExpired }},
		{"littletable_tablets_quarantined_total", "Corrupt tablets set aside at open", "counter",
			func(i int) int64 { return snaps[i].TabletsQuarantined }},
		{"littletable_flush_failures_total", "Flush attempts that failed", "counter",
			func(i int) int64 { return snaps[i].FlushFailures }},
		{"littletable_merge_failures_total", "Merge attempts that failed", "counter",
			func(i int) int64 { return snaps[i].MergeFailures }},
		{"littletable_merge_retries_total", "Merge attempts made after a failure", "counter",
			func(i int) int64 { return snaps[i].MergeRetries }},
		{"littletable_fault_recoveries_total", "Flush/merge successes after failures", "counter",
			func(i int) int64 { return snaps[i].FaultRecoveries }},
		{"littletable_read_errors_total", "Query-time tablet read errors", "counter",
			func(i int) int64 { return snaps[i].ReadErrors }},
		{"littletable_blocks_read_total", "Blocks obtained by query cursors", "counter",
			func(i int) int64 { return snaps[i].BlocksRead }},
		{"littletable_prefetch_hits_total", "Blocks served by prefetch pipelines", "counter",
			func(i int) int64 { return snaps[i].PrefetchHits }},
		{"littletable_parallel_opens_total", "Tablet sources opened by query worker pools", "counter",
			func(i int) int64 { return snaps[i].ParallelOpens }},
		{"littletable_block_cache_hits_total", "Block cache hits", "counter",
			func(i int) int64 { h, _ := tables[i].BlockCacheStats(); return h }},
		{"littletable_block_cache_misses_total", "Block cache misses", "counter",
			func(i int) int64 { _, m := tables[i].BlockCacheStats(); return m }},
		{"littletable_insert_batches_total", "Insert batches applied", "counter",
			func(i int) int64 { return snaps[i].InsertBatches }},
		{"littletable_group_commits_total", "Insert-lock acquisitions that applied queued batches", "counter",
			func(i int) int64 { return snaps[i].GroupCommits }},
		{"littletable_tablets_sealed_total", "Memtables sealed for flushing", "counter",
			func(i int) int64 { return snaps[i].TabletsSealed }},
		{"littletable_async_flushes_total", "Flush groups written by background workers", "counter",
			func(i int) int64 { return snaps[i].AsyncFlushes }},
		{"littletable_backpressure_stalls_total", "Inserts stalled on the unflushed backlog caps", "counter",
			func(i int) int64 { return snaps[i].BackpressureStalls }},
		{"littletable_commit_failures_total", "Descriptor commits that failed, losing sealed rows", "counter",
			func(i int) int64 { return snaps[i].CommitFailures }},
		{"littletable_rows_lost_total", "Rows dropped by failed descriptor commits", "counter",
			func(i int) int64 { return snaps[i].RowsLost }},
		{"littletable_merge_wait_ns_total", "Nanoseconds merge-eligible periods waited for a worker", "counter",
			func(i int) int64 { return snaps[i].MergeWaitNs }},
		{"littletable_expiry_wait_ns_total", "Nanoseconds due TTL expiry waited for a worker", "counter",
			func(i int) int64 { return snaps[i].ExpiryWaitNs }},
		{"littletable_expiry_runs_total", "TTL expiry rounds that reclaimed tablets", "counter",
			func(i int) int64 { return snaps[i].ExpiryRuns }},
		{"littletable_maintenance_bytes_throttled_total", "Maintenance I/O bytes delayed by the budget", "counter",
			func(i int) int64 { return snaps[i].MaintenanceBytesThrottled }},
		{"littletable_maintenance_throttle_ns_total", "Nanoseconds maintenance spent blocked in the I/O budget", "counter",
			func(i int) int64 { return snaps[i].MaintenanceThrottleNs }},
		{"littletable_tablets_installed_total", "Sealed tablets received from another shard and published", "counter",
			func(i int) int64 { return snaps[i].TabletsInstalled }},
		{"littletable_bytes_installed_total", "Bytes of tablets received from another shard", "counter",
			func(i int) int64 { return snaps[i].BytesInstalled }},
		{"littletable_blocks_encoded_total", "Blocks finished by tablet writers", "counter",
			func(i int) int64 { return snaps[i].BlocksEncoded }},
		{"littletable_blocks_encoded_columnar_total", "Blocks that chose the columnar layout", "counter",
			func(i int) int64 { return snaps[i].BlocksEncodedColumnar }},
		{"littletable_bytes_before_encode_total", "Legacy-image bytes before codec selection", "counter",
			func(i int) int64 { return snaps[i].BytesBeforeEncode }},
		{"littletable_bytes_after_encode_total", "Bytes of the chosen block images", "counter",
			func(i int) int64 { return snaps[i].BytesAfterEncode }},
		{"littletable_columns_delta_encoded_total", "Columns written delta-of-delta", "counter",
			func(i int) int64 { return snaps[i].ColumnsDeltaEncoded }},
		{"littletable_columns_xor_encoded_total", "Columns written as XOR bitstreams", "counter",
			func(i int) int64 { return snaps[i].ColumnsXOREncoded }},
		{"littletable_columns_dict_encoded_total", "Columns written dictionary or lzf", "counter",
			func(i int) int64 { return snaps[i].ColumnsDictEncoded }},
		{"littletable_columns_plain_encoded_total", "Columns that fell back to plain encoding", "counter",
			func(i int) int64 { return snaps[i].ColumnsPlainEncoded }},
		{"littletable_agg_queries_total", "Aggregation queries that scanned this table", "counter",
			func(i int) int64 { return snaps[i].AggQueries }},
		{"littletable_agg_rows_folded_total", "Rows folded into group states by aggregation queries", "counter",
			func(i int) int64 { return snaps[i].AggRowsFolded }},
		{"littletable_rollup_runs_total", "Rollup job runs that wrote buckets from this table", "counter",
			func(i int) int64 { return snaps[i].RollupRuns }},
		{"littletable_rollup_rows_written_total", "Rows written into rollup destination tables", "counter",
			func(i int) int64 { return snaps[i].RollupRowsWritten }},
		{"littletable_merges_in_flight", "Merges running right now", "gauge",
			func(i int) int64 { return snaps[i].MergesInFlight }},
		{"littletable_expiries_in_flight", "TTL expiry rounds running right now", "gauge",
			func(i int) int64 { return snaps[i].ExpiriesInFlight }},
		{"littletable_sealed_bytes", "Sealed-but-unflushed memtable bytes", "gauge",
			func(i int) int64 { return tables[i].SealedBytes() }},
		{"littletable_flush_queue_depth", "Sealed flush groups awaiting commit", "gauge",
			func(i int) int64 { return int64(tables[i].FlushQueueDepth()) }},
		{"littletable_disk_tablets", "On-disk tablets", "gauge",
			func(i int) int64 { return int64(tables[i].DiskTabletCount()) }},
		{"littletable_mem_tablets", "In-memory tablets", "gauge",
			func(i int) int64 { return int64(tables[i].MemTabletCount()) }},
		{"littletable_disk_bytes", "On-disk size", "gauge",
			func(i int) int64 { return tables[i].DiskBytes() }},
		{"littletable_row_estimate", "Approximate row count", "gauge",
			func(i int) int64 { return tables[i].RowEstimate() }},
	}
	for _, m := range metrics {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", m.name, m.help, m.name, m.typ)
		for i, t := range tables {
			fmt.Fprintf(w, "%s{table=%q} %d\n", m.name, t.Name(), m.value(i))
		}
	}

	// Server-level connection counters (no table label).
	s.mu.Lock()
	connsActive := int64(len(s.conns))
	s.mu.Unlock()
	var draining int64
	if s.draining.Load() {
		draining = 1
	}
	serverMetrics := []struct {
		name, help, typ string
		value           int64
	}{
		{"littletable_conns_dropped_deadline_total",
			"Connections dropped on read/write deadline expiry", "counter",
			s.stats.ConnsDroppedDeadline.Load()},
		{"littletable_conns_dropped_oversize_total",
			"Connections dropped for oversized request frames", "counter",
			s.stats.ConnsDroppedOversize.Load()},
		{"littletable_requests_shed_total",
			"Requests refused Overloaded at the max-in-flight admission gate", "counter",
			s.stats.RequestsShed.Load()},
		{"littletable_drain_ns_total",
			"Nanoseconds spent draining in-flight requests during Shutdown", "counter",
			s.stats.DrainNs.Load()},
		{"littletable_requests_in_flight",
			"Requests past the admission gate right now", "gauge",
			s.stats.RequestsInFlight.Load()},
		{"littletable_conns_active",
			"Open client connections", "gauge",
			connsActive},
		{"littletable_draining",
			"1 while the server is draining for graceful shutdown", "gauge",
			draining},
	}
	for _, m := range serverMetrics {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n%s %d\n", m.name, m.help, m.name, m.typ, m.name, m.value)
	}
}

// MetricsHandler returns an http.Handler serving /metrics and /healthz for
// the daemon's -metrics-addr listener.
func (s *Server) MetricsHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		s.WriteMetrics(w)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		s.mu.Lock()
		closed := s.closed
		n := len(s.tables)
		s.mu.Unlock()
		if closed {
			http.Error(w, "closed", http.StatusServiceUnavailable)
			return
		}
		fmt.Fprintf(w, "ok %d tables\n", n)
	})
	return mux
}
