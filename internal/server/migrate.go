package server

import (
	"fmt"

	"littletable/internal/wire"
)

// Migration endpoints: the send side (begin/fetch/end, serving pinned
// sealed-tablet bytes out of an export snapshot) and the receive side
// (staged chunked installs). The router drives the protocol; shards only
// hold state — an export pin on the source, a staging buffer on the
// target — between paired begin/end or offset-0/commit messages.

// maxStagedBytes bounds the total bytes of partially received tablet
// images across all in-flight installs: an abandoned migration must not
// pin unbounded memory. Large enough for several tablets in flight
// (tablets are typically a few MB; merges can produce tens of MB).
const maxStagedBytes = 256 << 20

// maxFetchBytes caps one MigrateFetch response's data, leaving frame
// headroom under wire.MaxFrame.
const maxFetchBytes = 8 << 20

func (s *Server) handleMigrateBegin(wc *wire.Conn, payload []byte) error {
	m, err := wire.DecodeMigrateBegin(payload)
	if err != nil {
		return err
	}
	t, err := s.Table(m.Table)
	if err != nil {
		return s.sendErr(wc, err)
	}
	infos, err := t.BeginExport()
	if err != nil {
		return s.sendErr(wc, err)
	}
	resp := &wire.MigrateManifest{Schema: t.Schema(), TTL: t.TTL()}
	for _, in := range infos {
		resp.Tablets = append(resp.Tablets, wire.MigrateTabletInfo{
			File:     in.File,
			Seq:      in.Seq,
			RowCount: in.RowCount,
			MinTs:    in.MinTs,
			MaxTs:    in.MaxTs,
			Bytes:    in.Bytes,
		})
	}
	b, err := resp.Encode()
	if err != nil {
		return err
	}
	return wc.WriteMsg(wire.MsgMigrateManifest, b)
}

func (s *Server) handleMigrateFetch(wc *wire.Conn, payload []byte) error {
	m, err := wire.DecodeMigrateFetch(payload)
	if err != nil {
		return err
	}
	t, err := s.Table(m.Table)
	if err != nil {
		return s.sendErr(wc, err)
	}
	n := int(m.MaxBytes)
	if n <= 0 || n > maxFetchBytes {
		n = maxFetchBytes
	}
	if m.Offset < 0 {
		return s.sendErr(wc, fmt.Errorf("server: negative fetch offset"))
	}
	buf := make([]byte, n)
	got, total, err := t.ReadExportAt(m.File, m.Offset, buf)
	if err != nil {
		return s.sendErr(wc, err)
	}
	resp := &wire.MigrateChunk{Total: total, Data: buf[:got]}
	return wc.WriteMsg(wire.MsgMigrateChunk, resp.Encode())
}

func (s *Server) handleMigrateEnd(wc *wire.Conn, payload []byte) error {
	m, err := wire.DecodeMigrateEnd(payload)
	if err != nil {
		return err
	}
	// Drop any staging buffers for the table too: an aborted migration's
	// End releases target-side memory alongside source-side pins.
	s.dropStaged(m.Table)
	t, err := s.Table(m.Table)
	if err != nil {
		// Ending an export on a table that no longer exists is fine: the
		// drop released everything already.
		return s.sendOK(wc)
	}
	t.EndExport()
	return s.sendOK(wc)
}

func (s *Server) handleMigrateInstall(wc *wire.Conn, payload []byte) error {
	m, err := wire.DecodeMigrateInstall(payload)
	if err != nil {
		return err
	}
	t, err := s.Table(m.Table)
	if err != nil {
		return s.sendErr(wc, err)
	}
	if m.Offset < 0 || m.Total < 0 || int64(len(m.Data)) > m.Total-m.Offset {
		return s.sendErr(wc, fmt.Errorf("server: install chunk exceeds advertised total"))
	}
	key := m.Table + "\x00" + m.File

	s.migMu.Lock()
	if s.installs == nil {
		s.installs = make(map[string][]byte)
	}
	staged := s.installs[key]
	if m.Offset == 0 {
		// Offset zero restarts the file: a failed transfer is resumed by
		// re-sending from the start, never by guessing how much arrived.
		s.stagedBytes -= int64(len(staged))
		staged = nil
	} else if int64(len(staged)) != m.Offset {
		got := int64(len(staged))
		s.migMu.Unlock()
		return s.sendErr(wc, fmt.Errorf("server: install offset %d, have %d staged; restart at 0", m.Offset, got))
	}
	if s.stagedBytes+int64(len(m.Data)) > maxStagedBytes {
		s.migMu.Unlock()
		return s.sendErr(wc, fmt.Errorf("server: install staging over %d bytes; retry later", int64(maxStagedBytes)))
	}
	staged = append(staged, m.Data...)
	s.stagedBytes += int64(len(m.Data))
	s.installs[key] = staged
	if !m.Commit {
		s.migMu.Unlock()
		return s.sendOK(wc)
	}
	delete(s.installs, key)
	s.stagedBytes -= int64(len(staged))
	s.migMu.Unlock()

	if int64(len(staged)) != m.Total {
		return s.sendErr(wc, fmt.Errorf("server: install commit with %d of %d bytes staged", len(staged), m.Total))
	}
	if err := t.InstallTablet(staged, m.RowCount, m.MinTs, m.MaxTs); err != nil {
		return s.sendErr(wc, err)
	}
	return s.sendOK(wc)
}

// dropStaged discards all staged install buffers for one table.
func (s *Server) dropStaged(table string) {
	prefix := table + "\x00"
	s.migMu.Lock()
	for k, v := range s.installs {
		if len(k) >= len(prefix) && k[:len(prefix)] == prefix {
			s.stagedBytes -= int64(len(v))
			delete(s.installs, k)
		}
	}
	s.migMu.Unlock()
}
