package server

import (
	"net"
	"strings"
	"testing"

	"littletable/internal/ltval"
	"littletable/internal/schema"
	"littletable/internal/wire"
)

// wireClient is a minimal raw-protocol client for driving the new
// endpoints in-process; the full pooled client lives in internal/client
// and gets its own coverage there.
type wireClient struct {
	t  *testing.T
	wc *wire.Conn
}

func dialWireClient(t *testing.T, addr net.Addr) *wireClient {
	t.Helper()
	_, wc := dialWire(t, addr)
	return &wireClient{t: t, wc: wc}
}

func (c *wireClient) do(mt wire.MsgType, payload []byte) (wire.MsgType, []byte) {
	c.t.Helper()
	if err := c.wc.WriteMsg(mt, payload); err != nil {
		c.t.Fatal(err)
	}
	rt, resp, err := c.wc.ReadMsg()
	if err != nil {
		c.t.Fatal(err)
	}
	return rt, resp
}

func (c *wireClient) mustOK(mt wire.MsgType, payload []byte) {
	c.t.Helper()
	rt, resp := c.do(mt, payload)
	if rt != wire.MsgOK {
		if rt == wire.MsgError {
			if m, err := wire.DecodeErrorMsg(resp); err == nil {
				c.t.Fatalf("server error: %s", m.Message)
			}
		}
		c.t.Fatalf("got message type %d, want OK", rt)
	}
}

func (c *wireClient) mustErr(mt wire.MsgType, payload []byte, substr string) {
	c.t.Helper()
	rt, resp := c.do(mt, payload)
	if rt != wire.MsgError {
		c.t.Fatalf("got message type %d, want Error", rt)
	}
	m, err := wire.DecodeErrorMsg(resp)
	if err != nil {
		c.t.Fatal(err)
	}
	if substr != "" && !strings.Contains(m.Message, substr) {
		c.t.Fatalf("error %q does not contain %q", m.Message, substr)
	}
}

func insertRows(t *testing.T, s *Server, table string, keys ...int64) {
	t.Helper()
	tab, err := s.Table(table)
	if err != nil {
		t.Fatal(err)
	}
	rows := make([]schema.Row, 0, len(keys))
	for _, k := range keys {
		rows = append(rows, schema.Row{ltval.NewInt64(k), ltval.NewTimestamp(k + 1)})
	}
	if err := tab.Insert(rows); err != nil {
		t.Fatal(err)
	}
}

func TestScatterQueryAcrossTables(t *testing.T) {
	s := newServer(t, t.TempDir())
	for _, name := range []string{"cust_a", "cust_b", "cust_c", "other"} {
		if _, err := s.CreateTable(name, testSchema(), 0); err != nil {
			t.Fatal(err)
		}
	}
	insertRows(t, s, "cust_a", 1, 2, 3)
	insertRows(t, s, "cust_b", 10, 11)
	insertRows(t, s, "other", 99)
	// cust_c stays empty.

	c := dialWireClient(t, serveTCP(t, s))
	rt, resp := c.do(wire.MsgScatterQuery, (&wire.ScatterQuery{Prefix: "cust_", MaxTs: 1 << 40}).Encode())
	if rt != wire.MsgScatterRows {
		t.Fatalf("got message type %d, want ScatterRows", rt)
	}
	m, err := wire.DecodeScatterRows(resp)
	if err != nil {
		t.Fatal(err)
	}
	if m.Truncated || len(m.Tables) != 3 {
		t.Fatalf("got truncated=%v tables=%d, want 3 untruncated", m.Truncated, len(m.Tables))
	}
	wantRows := map[string]int{"cust_a": 3, "cust_b": 2, "cust_c": 0}
	for i, sec := range m.Tables {
		if n, ok := wantRows[sec.Table]; !ok || len(sec.Rows) != n {
			t.Errorf("section %d table %q: %d rows", i, sec.Table, len(sec.Rows))
		}
		if i > 0 && sec.Table <= m.Tables[i-1].Table {
			t.Errorf("sections out of order: %q after %q", sec.Table, m.Tables[i-1].Table)
		}
	}

	// Per-table limit sets the More flag per section.
	rt, resp = c.do(wire.MsgScatterQuery, (&wire.ScatterQuery{Prefix: "cust_", MaxTs: 1 << 40, PerTableLimit: 2}).Encode())
	if rt != wire.MsgScatterRows {
		t.Fatalf("got message type %d", rt)
	}
	m, err = wire.DecodeScatterRows(resp)
	if err != nil {
		t.Fatal(err)
	}
	for _, sec := range m.Tables {
		switch sec.Table {
		case "cust_a":
			if len(sec.Rows) != 2 || !sec.More {
				t.Errorf("cust_a: rows=%d more=%v, want 2/true", len(sec.Rows), sec.More)
			}
		case "cust_b":
			if len(sec.Rows) != 2 || sec.More {
				t.Errorf("cust_b: rows=%d more=%v, want 2/false", len(sec.Rows), sec.More)
			}
		}
	}

	// MaxTables truncates deterministically (sorted order).
	rt, resp = c.do(wire.MsgScatterQuery, (&wire.ScatterQuery{Prefix: "cust_", MaxTs: 1 << 40, MaxTables: 2}).Encode())
	if rt != wire.MsgScatterRows {
		t.Fatalf("got message type %d", rt)
	}
	m, err = wire.DecodeScatterRows(resp)
	if err != nil {
		t.Fatal(err)
	}
	if !m.Truncated || len(m.Tables) != 2 || m.Tables[0].Table != "cust_a" || m.Tables[1].Table != "cust_b" {
		t.Fatalf("truncation wrong: %+v", m)
	}
}

func TestMigrateOverWire(t *testing.T) {
	src := newServer(t, t.TempDir())
	dst := newServer(t, t.TempDir())
	if _, err := src.CreateTable("t1", testSchema(), 0); err != nil {
		t.Fatal(err)
	}
	insertRows(t, src, "t1", 1, 2, 3, 4, 5)

	cs := dialWireClient(t, serveTCP(t, src))
	cd := dialWireClient(t, serveTCP(t, dst))

	// Begin: manifest with schema + tablets (flush happened server-side).
	rt, resp := cs.do(wire.MsgMigrateBegin, (&wire.MigrateBegin{Table: "t1"}).Encode())
	if rt != wire.MsgMigrateManifest {
		t.Fatalf("got message type %d, want Manifest", rt)
	}
	man, err := wire.DecodeMigrateManifest(resp)
	if err != nil {
		t.Fatal(err)
	}
	if len(man.Tablets) == 0 || man.Schema == nil {
		t.Fatalf("empty manifest: %+v", man)
	}

	// Create the table on the target, then ship every tablet in small
	// chunks to exercise offset staging.
	ct, err := (&wire.CreateTable{Name: "t1", Schema: man.Schema, TTL: man.TTL}).Encode()
	if err != nil {
		t.Fatal(err)
	}
	cd.mustOK(wire.MsgCreateTable, ct)
	for _, tab := range man.Tablets {
		var off int64
		for {
			rt, resp := cs.do(wire.MsgMigrateFetch, (&wire.MigrateFetch{
				Table: "t1", File: tab.File, Offset: off, MaxBytes: 128,
			}).Encode())
			if rt != wire.MsgMigrateChunk {
				t.Fatalf("fetch got message type %d", rt)
			}
			ch, err := wire.DecodeMigrateChunk(resp)
			if err != nil {
				t.Fatal(err)
			}
			if ch.Total != tab.Bytes {
				t.Fatalf("chunk total %d, manifest %d", ch.Total, tab.Bytes)
			}
			last := off+int64(len(ch.Data)) == ch.Total
			cd.mustOK(wire.MsgMigrateInstall, (&wire.MigrateInstall{
				Table: "t1", File: tab.File, Offset: off, Total: ch.Total,
				RowCount: tab.RowCount, MinTs: tab.MinTs, MaxTs: tab.MaxTs,
				Commit: last, Data: ch.Data,
			}).Encode())
			off += int64(len(ch.Data))
			if last {
				break
			}
		}
	}
	cs.mustOK(wire.MsgMigrateEnd, (&wire.MigrateEnd{Table: "t1"}).Encode())

	// All rows must be readable from the target.
	rt, resp = cd.do(wire.MsgQuery, (&wire.Query{Table: "t1", MaxTs: 1 << 40}).Encode())
	if rt != wire.MsgRows {
		t.Fatalf("query got message type %d", rt)
	}
	rows, err := wire.DecodeRows(resp, man.Schema)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows.Rows) != 5 {
		t.Fatalf("target has %d rows, want 5", len(rows.Rows))
	}
}

func TestMigrateInstallOffsetDiscipline(t *testing.T) {
	s := newServer(t, t.TempDir())
	if _, err := s.CreateTable("t1", testSchema(), 0); err != nil {
		t.Fatal(err)
	}
	c := dialWireClient(t, serveTCP(t, s))

	// A gap in offsets must be refused with a restart hint.
	c.mustOK(wire.MsgMigrateInstall, (&wire.MigrateInstall{
		Table: "t1", File: "x.tab", Offset: 0, Total: 10, Data: []byte{1, 2, 3},
	}).Encode())
	c.mustErr(wire.MsgMigrateInstall, (&wire.MigrateInstall{
		Table: "t1", File: "x.tab", Offset: 7, Total: 10, Data: []byte{1},
	}).Encode(), "restart at 0")
	// Committing with missing bytes must be refused.
	c.mustErr(wire.MsgMigrateInstall, (&wire.MigrateInstall{
		Table: "t1", File: "x.tab", Offset: 3, Total: 10, Data: []byte{4}, Commit: true,
	}).Encode(), "staged")
	// Garbage bytes at commit must be refused by verification, and the
	// staging buffer for the file is gone afterwards (offset 3 refused).
	c.mustOK(wire.MsgMigrateInstall, (&wire.MigrateInstall{
		Table: "t1", File: "x.tab", Offset: 0, Total: 4, Data: []byte{9, 9},
	}).Encode())
	c.mustErr(wire.MsgMigrateInstall, (&wire.MigrateInstall{
		Table: "t1", File: "x.tab", Offset: 2, Total: 4, Data: []byte{9, 9}, Commit: true,
	}).Encode(), "install tablet")
	c.mustErr(wire.MsgMigrateInstall, (&wire.MigrateInstall{
		Table: "t1", File: "x.tab", Offset: 2, Total: 4, Data: []byte{9, 9},
	}).Encode(), "restart at 0")
	// A chunk longer than its advertised span is refused outright.
	c.mustErr(wire.MsgMigrateInstall, (&wire.MigrateInstall{
		Table: "t1", File: "y.tab", Offset: 0, Total: 1, Data: []byte{1, 2, 3},
	}).Encode(), "exceeds")

	tab, err := s.Table("t1")
	if err != nil {
		t.Fatal(err)
	}
	if n := tab.DiskTabletCount(); n != 0 {
		t.Fatalf("refused installs left %d tablets", n)
	}
}

func TestMigrateEndReleasesExportAndStaging(t *testing.T) {
	s := newServer(t, t.TempDir())
	if _, err := s.CreateTable("t1", testSchema(), 0); err != nil {
		t.Fatal(err)
	}
	insertRows(t, s, "t1", 1)
	c := dialWireClient(t, serveTCP(t, s))
	rt, _ := c.do(wire.MsgMigrateBegin, (&wire.MigrateBegin{Table: "t1"}).Encode())
	if rt != wire.MsgMigrateManifest {
		t.Fatalf("got %d", rt)
	}
	c.mustOK(wire.MsgMigrateInstall, (&wire.MigrateInstall{
		Table: "t1", File: "z.tab", Offset: 0, Total: 100, Data: []byte{1, 2},
	}).Encode())
	c.mustOK(wire.MsgMigrateEnd, (&wire.MigrateEnd{Table: "t1"}).Encode())
	s.migMu.Lock()
	staged := len(s.installs)
	bytes := s.stagedBytes
	s.migMu.Unlock()
	if staged != 0 || bytes != 0 {
		t.Fatalf("staging not released: %d entries, %d bytes", staged, bytes)
	}
	// End on a missing table is OK (idempotent cleanup).
	c.mustOK(wire.MsgMigrateEnd, (&wire.MigrateEnd{Table: "missing"}).Encode())
}
