package server

import (
	"errors"

	"littletable/internal/core"
)

// runRollups drives one pass of every table's continuous-downsampling
// rules (core.RollupRule), on the same cadence as the rest of the
// maintenance loop. The destination table is created on first use with
// the schema the rule derives and the rule's own TTL — the paper's raw
// short-TTL / summary long-TTL split (§2.2) without any operator step
// beyond declaring the rule. Failures are logged and retried next tick;
// the watermark recovery inside core.RollupStep makes a half-finished
// pass safe to repeat.
func (s *Server) runRollups() {
	for _, src := range s.snapshotTables() {
		for _, rule := range src.Rollups() {
			dest, err := s.Table(rule.Dest)
			if errors.Is(err, ErrNoSuchTable) {
				destSc, derr := rule.DestSchema(src.Schema())
				if derr != nil {
					s.opts.Logf("littletable: rollup %s -> %s: %v", src.Name(), rule.Dest, derr)
					continue
				}
				dest, err = s.CreateTable(rule.Dest, destSc, rule.TTL)
			}
			if err != nil {
				s.opts.Logf("littletable: rollup %s -> %s: %v", src.Name(), rule.Dest, err)
				continue
			}
			if _, err := core.RollupStep(src, dest, rule, s.Now()); err != nil &&
				!errors.Is(err, core.ErrTableClosed) {
				s.opts.Logf("littletable: rollup %s -> %s: %v", src.Name(), rule.Dest, err)
			}
		}
	}
}
