package server

import (
	"errors"
	"sort"
	"strings"

	"littletable/internal/core"
	"littletable/internal/schema"
	"littletable/internal/wire"
)

// handleScatterQuery runs one bounded query against every local table
// whose name matches the prefix, in sorted name order. The router sends
// the same message to every shard and concatenates the sections; a
// single-shard client gets the same semantics for free.
func (s *Server) handleScatterQuery(wc *wire.Conn, payload []byte) error {
	m, err := wire.DecodeScatterQuery(payload)
	if err != nil {
		return err
	}
	names := s.TableNames()
	sort.Strings(names)
	matched := names[:0]
	for _, n := range names {
		if strings.HasPrefix(n, m.Prefix) {
			matched = append(matched, n)
		}
	}
	resp := &wire.ScatterRows{}
	if m.MaxTables > 0 && len(matched) > int(m.MaxTables) {
		matched = matched[:m.MaxTables]
		resp.Truncated = true
	}
	limit := s.opts.QueryRowLimit
	if m.PerTableLimit > 0 && int(m.PerTableLimit) < limit {
		limit = int(m.PerTableLimit)
	}
	q := core.Query{
		LowerInc: m.LowerInc, UpperInc: m.UpperInc,
		MinTs: m.MinTs, MaxTs: m.MaxTs,
		Descending: m.Descending,
	}
	if m.HasLower {
		q.Lower = m.Lower
	}
	if m.HasUpper {
		q.Upper = m.Upper
	}
	for _, name := range matched {
		t, err := s.Table(name)
		if err != nil {
			// Dropped between listing and query; a scatter result is a
			// snapshot, not a transaction. Skip it.
			continue
		}
		sec, err := s.scanOneTable(t, q, limit)
		if err != nil {
			if errors.Is(err, core.ErrBadQuery) {
				// The key bounds don't fit this table's schema. Prefix
				// scatter assumes same-shaped tables by convention (§2.2,
				// one table per customer/device-class); a differently
				// shaped namesake is skipped, not fatal.
				continue
			}
			return s.sendErr(wc, err)
		}
		sec.Table = name
		resp.Tables = append(resp.Tables, sec)
	}
	b, err := resp.Encode()
	if err != nil {
		return err
	}
	return wc.WriteMsg(wire.MsgScatterRows, b)
}

func (s *Server) scanOneTable(t *core.Table, q core.Query, limit int) (wire.ScatterTableRows, error) {
	sec := wire.ScatterTableRows{Schema: t.Schema()}
	it, err := t.QueryCtx(s.baseCtx, q)
	if err != nil {
		return sec, err
	}
	defer it.Close()
	for len(sec.Rows) < limit && it.Next() {
		sec.Rows = append(sec.Rows, schema.CloneRow(it.Row()))
	}
	if err := it.Err(); err != nil {
		return sec, err
	}
	if len(sec.Rows) == limit && it.Next() {
		sec.More = true
	}
	return sec, nil
}
