// Package server implements the LittleTable server process (§3.1): an
// independent daemon owning a directory of tables, serving the wire
// protocol over TCP, and running each table's background maintenance
// (flushing, merging, TTL expiry).
package server

import (
	"context"
	"errors"
	"fmt"
	"log"
	"net"
	"path/filepath"
	"regexp"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"littletable/internal/clock"
	"littletable/internal/core"
	"littletable/internal/schema"
	"littletable/internal/vfs"
	"littletable/internal/wire"
)

// Options configure a Server.
type Options struct {
	// Root is the data directory; one subdirectory per table.
	Root string

	// Core options are applied to every table.
	Core core.Options

	// MaintenanceInterval is how often the background loop flushes aged
	// tablets, merges, and expires TTLs. Default 1s.
	MaintenanceInterval time.Duration

	// QueryRowLimit caps rows per query response; the client re-submits on
	// the more-available flag (§3.5). Default core.DefaultQueryRowLimit.
	QueryRowLimit int

	// ReadTimeout bounds how long the server waits for the next request on
	// an idle connection; a stalled or dead peer is dropped when it expires.
	// 0 disables the deadline (clients keep connections persistent to detect
	// server crashes, §3.1, so the default is permissive).
	ReadTimeout time.Duration

	// WriteTimeout bounds each response write; a peer that stops reading
	// cannot pin a handler goroutine forever. 0 disables.
	WriteTimeout time.Duration

	// MaxRequestBytes caps a single request frame, bounding per-connection
	// memory against oversized or malicious messages. 0 means wire.MaxFrame.
	MaxRequestBytes int

	// MaxInFlight caps concurrently executing requests across all
	// connections. Beyond the cap the server sheds load: the request is
	// refused with a wire-level Overloaded reply (NOT processed), so
	// clients back off and retry instead of timing out blind. 0 disables
	// the gate.
	MaxInFlight int

	// BaseContext, when set, parents every query context; cancelling it
	// stops in-flight block loads and prefetch pipelines. The daemon wires
	// its signal context here so a dying process reclaims readers promptly.
	// Nil means a server-owned root cancelled on Close/Shutdown.
	BaseContext context.Context

	// Logf sinks server logs; default log.Printf.
	Logf func(format string, args ...interface{})
}

// ServerStats count connection-level robustness events.
type ServerStats struct {
	// ConnsDroppedDeadline counts connections closed because a read or
	// write deadline expired.
	ConnsDroppedDeadline atomic.Int64
	// ConnsDroppedOversize counts connections closed for sending a frame
	// larger than MaxRequestBytes.
	ConnsDroppedOversize atomic.Int64
	// RequestsShed counts requests refused with Overloaded at the
	// MaxInFlight admission gate, without being processed.
	RequestsShed atomic.Int64
	// RequestsInFlight is a gauge of requests past the admission gate
	// right now.
	RequestsInFlight atomic.Int64
	// DrainNs accumulates nanoseconds spent draining in-flight requests
	// during graceful Shutdown.
	DrainNs atomic.Int64
}

var tableNameRE = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]{0,127}$`)

// Errors returned by table management.
var (
	ErrNoSuchTable  = errors.New("server: no such table")
	ErrBadTableName = errors.New("server: invalid table name")
	ErrClosed       = errors.New("server: closed")
)

// Server owns a directory of LittleTable tables.
type Server struct {
	opts  Options
	stats ServerStats

	mu     sync.Mutex
	tables map[string]*core.Table
	conns  map[net.Conn]*connState
	closed bool

	// draining is set by Shutdown: stop accepting, let in-flight
	// requests finish, refuse new work.
	draining atomic.Bool

	// Migration receive path: chunked tablet images being staged before
	// install, keyed by table + file. Guarded by migMu (not mu: staging
	// appends happen during request handling and must not contend with
	// the connection bookkeeping).
	migMu       sync.Mutex
	installs    map[string][]byte
	stagedBytes int64

	lis     net.Listener
	stop    chan struct{}
	drained chan struct{} // closed when the Drain loop finishes
	wg      sync.WaitGroup
	maintWG sync.WaitGroup

	// baseCtx parents every query's context: closing the server cancels
	// it, which stops in-flight block loads and prefetch pipelines.
	baseCtx    context.Context
	baseCancel context.CancelFunc
}

// New opens (or creates) the data directory and all tables within it, and
// starts the maintenance loop.
func New(opts Options) (*Server, error) {
	if opts.MaintenanceInterval == 0 {
		opts.MaintenanceInterval = time.Second
	}
	if opts.QueryRowLimit == 0 {
		opts.QueryRowLimit = core.DefaultQueryRowLimit
	}
	if opts.Logf == nil {
		opts.Logf = log.Printf
	}
	if opts.Core.Clock == nil {
		opts.Core.Clock = clock.Real{}
	}
	if err := rootFS(opts).MkdirAll(opts.Root); err != nil {
		return nil, err
	}
	s := &Server{
		opts:    opts,
		tables:  make(map[string]*core.Table),
		conns:   make(map[net.Conn]*connState),
		stop:    make(chan struct{}),
		drained: make(chan struct{}),
	}
	base := opts.BaseContext
	if base == nil {
		//ltlint:ignore ctxprop the server root: embedders without a BaseContext get a root cancelled on Close/Shutdown
		base = context.Background()
	}
	s.baseCtx, s.baseCancel = context.WithCancel(base)
	ents, err := rootFS(opts).ReadDir(opts.Root)
	if err != nil {
		return nil, err
	}
	for _, e := range ents {
		if !e.IsDir() || !tableNameRE.MatchString(e.Name()) {
			continue
		}
		t, err := core.OpenTable(opts.Root, e.Name(), opts.Core)
		if err != nil {
			s.closeTablesLocked()
			return nil, fmt.Errorf("server: open table %s: %w", e.Name(), err)
		}
		s.tables[e.Name()] = t
	}
	s.maintWG.Add(1)
	go s.maintainLoop()
	return s, nil
}

// maintainLoop periodically runs each table's Tick: age-based flushes,
// merges, and TTL expiry.
func (s *Server) maintainLoop() {
	defer s.maintWG.Done()
	tick := time.NewTicker(s.opts.MaintenanceInterval)
	defer tick.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-tick.C:
			for _, t := range s.snapshotTables() {
				if err := t.Tick(); err != nil && !errors.Is(err, core.ErrTableClosed) {
					s.opts.Logf("littletable: maintenance on %s: %v", t.Name(), err)
				}
			}
			s.runRollups()
		}
	}
}

func (s *Server) snapshotTables() []*core.Table {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*core.Table, 0, len(s.tables))
	for _, t := range s.tables {
		out = append(out, t)
	}
	return out
}

// Table returns the named open table for in-process use (benchmarks, the
// application daemons when co-located, and tests).
func (s *Server) Table(name string) (*core.Table, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrClosed
	}
	t, ok := s.tables[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoSuchTable, name)
	}
	return t, nil
}

// Now returns the server's engine time in microseconds.
func (s *Server) Now() int64 { return s.opts.Core.Clock.Now() }

// TableNames lists tables in sorted order.
func (s *Server) TableNames() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	names := make([]string, 0, len(s.tables))
	for n := range s.tables {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// CreateTable creates and opens a new table.
func (s *Server) CreateTable(name string, sc *schema.Schema, ttl int64) (*core.Table, error) {
	if !tableNameRE.MatchString(name) {
		return nil, fmt.Errorf("%w: %q", ErrBadTableName, name)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrClosed
	}
	if _, ok := s.tables[name]; ok {
		return nil, fmt.Errorf("server: table %q already exists", name)
	}
	t, err := core.CreateTable(s.opts.Root, name, sc, ttl, s.opts.Core)
	if err != nil {
		return nil, err
	}
	s.tables[name] = t
	return t, nil
}

// DropTable closes the table and deletes its directory. Dashboard drops
// and recreates tables freely during feature development (§3.5).
func (s *Server) DropTable(name string) error {
	s.mu.Lock()
	t, ok := s.tables[name]
	if ok {
		delete(s.tables, name)
	}
	s.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %q", ErrNoSuchTable, name)
	}
	s.dropStaged(name)
	if err := t.Close(); err != nil {
		return err
	}
	return rootFS(s.opts).RemoveAll(filepath.Join(s.opts.Root, name))
}

// rootFS is the filesystem for root-directory operations: the tables' FS
// when injected, the real one otherwise.
func rootFS(opts Options) vfs.FS {
	if opts.Core.FS != nil {
		return opts.Core.FS
	}
	return vfs.OsFS{}
}

// Serve accepts connections on lis until Close.
func (s *Server) Serve(lis net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrClosed
	}
	s.lis = lis
	s.mu.Unlock()
	for {
		conn, err := lis.Accept()
		if err != nil {
			if s.draining.Load() {
				return nil
			}
			select {
			case <-s.stop:
				return nil
			default:
				return err
			}
		}
		s.mu.Lock()
		if s.closed || s.draining.Load() {
			s.mu.Unlock()
			conn.Close()
			return nil
		}
		st := &connState{}
		s.conns[conn] = st
		s.mu.Unlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer func() {
				s.mu.Lock()
				delete(s.conns, conn)
				s.mu.Unlock()
			}()
			s.handleConn(conn, st)
		}()
	}
}

// ListenAndServe listens on addr and serves until Close. It returns the
// chosen address on a channel-free API by blocking; use Listen + Serve to
// learn the port first.
func (s *Server) ListenAndServe(addr string) error {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(lis)
}

// Shutdown drains the server gracefully: stop accepting connections, let
// requests already past the admission gate finish and their responses
// reach the wire, then close everything Close closes. Idle connections
// (blocked waiting for their next request) are closed immediately —
// their clients see a clean EOF between requests, never a truncated
// response. If ctx expires first, remaining connections are hard-closed
// and ctx's error is returned. The §3.1 deployment leans on this: a
// shard being recycled must not turn acknowledged work into lies.
func (s *Server) Shutdown(ctx context.Context) error {
	err := s.Drain(ctx)
	if cerr := s.Close(); cerr != nil && err == nil {
		err = cerr
	}
	return err
}

// Drain is Shutdown without the final Close: it stops accepting and waits
// for in-flight requests, but leaves the tables open. It exists for
// callers that must act between the last request and table close —
// littletabled's -flush-on-exit flushes acked-but-unflushed rows there.
// Most callers want Shutdown.
func (s *Server) Drain(ctx context.Context) error {
	start := time.Now()
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	alreadyDraining := s.draining.Swap(true)
	lis := s.lis
	s.mu.Unlock()
	if alreadyDraining {
		// A concurrent Drain owns the loop; just wait for it.
		select {
		case <-s.drained:
			return nil
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	if lis != nil {
		lis.Close()
	}

	var err error
	ticker := time.NewTicker(2 * time.Millisecond)
	defer ticker.Stop()
drain:
	for {
		s.mu.Lock()
		for conn, st := range s.conns {
			if !st.busy.Load() {
				// Idle between requests: close now. handleConn also exits
				// on its own after finishing a request while draining.
				conn.Close()
			}
		}
		n := len(s.conns)
		s.mu.Unlock()
		if n == 0 {
			break
		}
		select {
		case <-ctx.Done():
			err = ctx.Err()
			break drain
		case <-ticker.C:
		}
	}
	s.stats.DrainNs.Add(time.Since(start).Nanoseconds())
	close(s.drained)
	return err
}

// connState tracks whether a connection is mid-request, so Shutdown can
// distinguish in-flight work (wait for it) from idle connections (close
// them).
type connState struct {
	busy atomic.Bool
}

// Close stops serving, stops maintenance, flushes nothing (the durability
// contract), and closes all tables.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	close(s.stop)
	s.baseCancel()
	lis := s.lis
	for conn := range s.conns {
		conn.Close()
	}
	s.mu.Unlock()
	if lis != nil {
		lis.Close()
	}
	s.maintWG.Wait()
	s.wg.Wait()
	s.mu.Lock()
	s.closeTablesLocked()
	s.mu.Unlock()
	return nil
}

func (s *Server) closeTablesLocked() {
	for _, t := range s.tables {
		t.Close()
	}
	s.tables = map[string]*core.Table{}
}

// Stats exposes the server's connection-level counters.
func (s *Server) Stats() *ServerStats { return &s.stats }

// serverStatsResult snapshots server-level counters for the wire. The
// in-flight gauge includes the stats request itself, so it reads >= 1.
func (s *Server) serverStatsResult() *wire.ServerStatsResult {
	s.mu.Lock()
	conns := len(s.conns)
	s.mu.Unlock()
	var draining int64
	if s.draining.Load() {
		draining = 1
	}
	return &wire.ServerStatsResult{
		ConnsActive:          int64(conns),
		RequestsInFlight:     s.stats.RequestsInFlight.Load(),
		ConnsDroppedDeadline: s.stats.ConnsDroppedDeadline.Load(),
		ConnsDroppedOversize: s.stats.ConnsDroppedOversize.Load(),
		RequestsShed:         s.stats.RequestsShed.Load(),
		Draining:             draining,
		DrainNs:              s.stats.DrainNs.Load(),
	}
}

// FlushAllTables flushes every table's memtables; used at orderly shutdown
// when the operator wants zero loss despite the weak durability contract.
func (s *Server) FlushAllTables() error {
	for _, t := range s.snapshotTables() {
		if err := t.FlushAll(); err != nil {
			return err
		}
	}
	return nil
}
