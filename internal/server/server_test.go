package server

import (
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"testing"
	"time"

	"littletable/internal/clock"
	"littletable/internal/core"
	"littletable/internal/ltval"
	"littletable/internal/schema"
)

func testSchema() *schema.Schema {
	return schema.MustNew([]schema.Column{
		{Name: "k", Type: ltval.Int64},
		{Name: "ts", Type: ltval.Timestamp},
	}, []string{"k", "ts"})
}

func newServer(t *testing.T, root string) *Server {
	t.Helper()
	s, err := New(Options{
		Root:                root,
		MaintenanceInterval: 10 * time.Millisecond,
		Logf:                t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func TestTableNameValidation(t *testing.T) {
	s := newServer(t, t.TempDir())
	bad := []string{"", "../etc", "a/b", "has space", "0starts_with_digit", ".hidden",
		"way_too_long_" + string(make([]byte, 140))}
	for _, name := range bad {
		if _, err := s.CreateTable(name, testSchema(), 0); !errors.Is(err, ErrBadTableName) {
			t.Errorf("name %q: %v", name, err)
		}
	}
	good := []string{"usage", "_private", "Events2", "a"}
	for _, name := range good {
		if _, err := s.CreateTable(name, testSchema(), 0); err != nil {
			t.Errorf("name %q rejected: %v", name, err)
		}
	}
}

func TestCreateOpenDropLifecycle(t *testing.T) {
	s := newServer(t, t.TempDir())
	if _, err := s.CreateTable("a", testSchema(), 0); err != nil {
		t.Fatal(err)
	}
	if _, err := s.CreateTable("a", testSchema(), 0); err == nil {
		t.Error("duplicate create accepted")
	}
	if _, err := s.Table("a"); err != nil {
		t.Error(err)
	}
	if _, err := s.Table("missing"); !errors.Is(err, ErrNoSuchTable) {
		t.Errorf("missing table: %v", err)
	}
	if err := s.DropTable("a"); err != nil {
		t.Fatal(err)
	}
	if err := s.DropTable("a"); !errors.Is(err, ErrNoSuchTable) {
		t.Errorf("double drop: %v", err)
	}
	if len(s.TableNames()) != 0 {
		t.Error("table still listed")
	}
}

func TestMaintenanceFlushesAgedTablets(t *testing.T) {
	// A real-clock server with a tiny flush age: the maintenance loop must
	// flush aged memtables without any explicit call.
	root := t.TempDir()
	s, err := New(Options{
		Root: root,
		Core: core.Options{
			Clock:    clock.Real{},
			FlushAge: (50 * time.Millisecond).Microseconds(),
		},
		MaintenanceInterval: 10 * time.Millisecond,
		Logf:                t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	tab, err := s.CreateTable("t", testSchema(), 0)
	if err != nil {
		t.Fatal(err)
	}
	now := clock.Real{}.Now()
	if err := tab.Insert([]schema.Row{{ltval.NewInt64(1), ltval.NewTimestamp(now)}}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(3 * time.Second)
	for tab.DiskTabletCount() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("maintenance never flushed the aged memtable")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestCloseIsIdempotentAndTerminal(t *testing.T) {
	s := newServer(t, t.TempDir())
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Errorf("second close: %v", err)
	}
	if _, err := s.CreateTable("x", testSchema(), 0); !errors.Is(err, ErrClosed) {
		t.Errorf("create after close: %v", err)
	}
	if _, err := s.Table("x"); !errors.Is(err, ErrClosed) {
		t.Errorf("table after close: %v", err)
	}
}

func TestFlushAllTables(t *testing.T) {
	s := newServer(t, t.TempDir())
	tab, err := s.CreateTable("t", testSchema(), 0)
	if err != nil {
		t.Fatal(err)
	}
	now := clock.Real{}.Now()
	tab.Insert([]schema.Row{{ltval.NewInt64(1), ltval.NewTimestamp(now)}})
	if err := s.FlushAllTables(); err != nil {
		t.Fatal(err)
	}
	if tab.DiskTabletCount() != 1 {
		t.Error("FlushAllTables left memtables")
	}
}

func TestNonTableDirectoriesIgnoredOnOpen(t *testing.T) {
	root := t.TempDir()
	s1 := newServer(t, root)
	if _, err := s1.CreateTable("real", testSchema(), 0); err != nil {
		t.Fatal(err)
	}
	s1.Close()
	// Unrelated junk in the root must not break reopen.
	if err := writeJunk(root); err != nil {
		t.Fatal(err)
	}
	s2 := newServer(t, root)
	names := s2.TableNames()
	if len(names) != 1 || names[0] != "real" {
		t.Fatalf("recovered tables: %v", names)
	}
}

func writeJunk(root string) error {
	if err := os.Mkdir(root+"/.git", 0o755); err != nil {
		return err
	}
	return os.WriteFile(root+"/README", []byte("not a table"), 0o644)
}

func TestMetricsEndpoint(t *testing.T) {
	s := newServer(t, t.TempDir())
	tab, err := s.CreateTable("usage", testSchema(), 0)
	if err != nil {
		t.Fatal(err)
	}
	now := clock.Real{}.Now()
	tab.Insert([]schema.Row{{ltval.NewInt64(1), ltval.NewTimestamp(now)}})
	tab.FlushAll()
	// A disk-hitting query so the read-path counters have flowed.
	if _, err := tab.QueryAll(core.NewQuery()); err != nil {
		t.Fatal(err)
	}

	srv := httptest.NewServer(s.MetricsHandler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	text := string(body)
	for _, want := range []string{
		`littletable_rows_inserted_total{table="usage"} 1`,
		`littletable_disk_tablets{table="usage"} 1`,
		"# TYPE littletable_disk_bytes gauge",
		`littletable_blocks_read_total{table="usage"} 1`,
		`littletable_prefetch_hits_total{table="usage"}`,
		`littletable_parallel_opens_total{table="usage"}`,
		`littletable_block_cache_hits_total{table="usage"} 0`,
		`littletable_block_cache_misses_total{table="usage"} 0`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q in:\n%s", want, text)
		}
	}
	// Health check.
	resp, err = http.Get(srv.URL + "/healthz")
	if err != nil || resp.StatusCode != 200 {
		t.Fatalf("healthz: %v %v", resp.StatusCode, err)
	}
	resp.Body.Close()
}
