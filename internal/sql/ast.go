package sql

import (
	"littletable/internal/ltval"
	"littletable/internal/schema"
)

// Stmt is any parsed statement.
type Stmt interface{ stmt() }

// SelectStmt is a SELECT query.
type SelectStmt struct {
	Items   []SelectItem
	Table   string
	Where   Expr // nil if absent
	GroupBy []string
	OrderBy []OrderKey
	Limit   int // 0 = none
}

// SelectItem is one output column: a column reference, *, or an aggregate.
type SelectItem struct {
	Star  bool
	Col   string
	Agg   string // "", "COUNT", "SUM", "AVG", "MIN", "MAX"
	Alias string
}

// OrderKey is one ORDER BY column.
type OrderKey struct {
	Col  string
	Desc bool
}

// InsertStmt is an INSERT.
type InsertStmt struct {
	Table   string
	Columns []string // empty = all, in schema order
	Rows    [][]Expr
}

// CreateTableStmt is a CREATE TABLE.
type CreateTableStmt struct {
	Table   string
	Columns []schema.Column
	Key     []string
	TTL     int64 // microseconds, 0 = none
}

// DropTableStmt is a DROP TABLE.
type DropTableStmt struct{ Table string }

// ShowTablesStmt is SHOW TABLES.
type ShowTablesStmt struct{}

// ShowStatsStmt is SHOW STATS <table>: the table's operational counters.
type ShowStatsStmt struct{ Table string }

// DescribeStmt is DESCRIBE <table>.
type DescribeStmt struct{ Table string }

// AlterStmt covers ALTER TABLE variants.
type AlterStmt struct {
	Table string
	// Exactly one of the following is set.
	AddColumn   *schema.Column
	WidenColumn string
	SetTTL      *int64
}

// LatestStmt is the dialect's LATEST <prefix-cols...> FROM <table> WHERE
// <key equalities> convenience for §3.4.5 lookups:
//
//	SELECT LATEST FROM usage WHERE network = 5 AND device = 9
type LatestStmt struct {
	Table string
	Where Expr
}

// FlushStmt is FLUSH TABLE <name> (the §4.1.2 extension).
type FlushStmt struct{ Table string }

// DeleteStmt is DELETE FROM <table> WHERE <expr> — the bulk delete the
// paper's conclusion proposes for privacy-law compliance (§7).
type DeleteStmt struct {
	Table string
	Where Expr
}

func (*SelectStmt) stmt()      {}
func (*InsertStmt) stmt()      {}
func (*CreateTableStmt) stmt() {}
func (*DropTableStmt) stmt()   {}
func (*ShowTablesStmt) stmt()  {}
func (*ShowStatsStmt) stmt()   {}
func (*DescribeStmt) stmt()    {}
func (*AlterStmt) stmt()       {}
func (*LatestStmt) stmt()      {}
func (*FlushStmt) stmt()       {}
func (*DeleteStmt) stmt()      {}

// Expr is a boolean or scalar expression.
type Expr interface{ expr() }

// ColRef references a column by name.
type ColRef struct {
	Name string
	Pos  int
}

// Lit is a literal value. Numeric literals carry both renderings and are
// coerced to the column type at planning time.
type Lit struct {
	IsNumber bool
	Int      int64
	Float    float64
	IsFloat  bool // the literal had a decimal point / exponent
	Str      *string
	Blob     []byte
	Pos      int
}

// Cmp is a comparison: Left op Right.
type Cmp struct {
	Op    string // "=", "!=", "<", "<=", ">", ">="
	Left  Expr
	Right Expr
	Pos   int
}

// Logic is AND/OR.
type Logic struct {
	Op          string // "AND", "OR"
	Left, Right Expr
}

// Not negates an expression.
type Not struct{ E Expr }

// Between is col BETWEEN a AND b (inclusive).
type Between struct {
	Col *ColRef
	Lo  Expr
	Hi  Expr
	Pos int
}

// NowExpr is NOW() [± INTERVAL], resolved at planning time to engine
// microseconds.
type NowExpr struct {
	OffsetUs int64 // signed offset applied to now
	Pos      int
}

func (*ColRef) expr()  {}
func (*Lit) expr()     {}
func (*Cmp) expr()     {}
func (*Logic) expr()   {}
func (*Not) expr()     {}
func (*Between) expr() {}
func (*NowExpr) expr() {}

// litToValue coerces a literal to a column type.
func litToValue(l *Lit, t ltval.Type) (ltval.Value, error) {
	switch t {
	case ltval.Int32:
		if !l.IsNumber || l.IsFloat {
			return ltval.Value{}, errf(l.Pos, "expected int32 literal")
		}
		return ltval.NewInt32(int32(l.Int)), nil
	case ltval.Int64:
		if !l.IsNumber || l.IsFloat {
			return ltval.Value{}, errf(l.Pos, "expected int64 literal")
		}
		return ltval.NewInt64(l.Int), nil
	case ltval.Timestamp:
		if !l.IsNumber || l.IsFloat {
			return ltval.Value{}, errf(l.Pos, "expected timestamp literal (microseconds)")
		}
		return ltval.NewTimestamp(l.Int), nil
	case ltval.Double:
		if !l.IsNumber {
			return ltval.Value{}, errf(l.Pos, "expected numeric literal")
		}
		if l.IsFloat {
			return ltval.NewDouble(l.Float), nil
		}
		return ltval.NewDouble(float64(l.Int)), nil
	case ltval.String:
		if l.Str == nil {
			return ltval.Value{}, errf(l.Pos, "expected string literal")
		}
		return ltval.NewString(*l.Str), nil
	case ltval.Blob:
		if l.Blob == nil {
			if l.Str != nil {
				return ltval.NewBlob([]byte(*l.Str)), nil
			}
			return ltval.Value{}, errf(l.Pos, "expected blob literal x'..'")
		}
		return ltval.NewBlob(l.Blob), nil
	default:
		return ltval.Value{}, errf(l.Pos, "unsupported column type")
	}
}
