package sql

import (
	"fmt"

	"littletable/internal/client"
	"littletable/internal/clock"
	"littletable/internal/core"
	"littletable/internal/ltval"
	"littletable/internal/schema"
	"littletable/internal/server"
)

// ServerBackend executes statements in-process against a server's tables:
// the deployment where the SQL layer runs inside the same process as the
// engine (cmd/littletabled's admin console, benchmarks, tests).
type ServerBackend struct {
	S *server.Server
}

var _ Backend = (*ServerBackend)(nil)

// OpenTable implements Backend.
func (b *ServerBackend) OpenTable(name string) (Table, error) {
	t, err := b.S.Table(name)
	if err != nil {
		return nil, err
	}
	return &serverTable{t: t}, nil
}

// CreateTable implements Backend.
func (b *ServerBackend) CreateTable(name string, sc *schema.Schema, ttl int64) error {
	_, err := b.S.CreateTable(name, sc, ttl)
	return err
}

// DropTable implements Backend.
func (b *ServerBackend) DropTable(name string) error { return b.S.DropTable(name) }

// ListTables implements Backend.
func (b *ServerBackend) ListTables() ([]string, error) { return b.S.TableNames(), nil }

// FlushTable implements Backend.
func (b *ServerBackend) FlushTable(name string) error {
	t, err := b.S.Table(name)
	if err != nil {
		return err
	}
	return t.FlushAll()
}

// Now implements Backend.
func (b *ServerBackend) Now() int64 { return b.S.Now() }

type serverTable struct{ t *core.Table }

func (st *serverTable) Schema() *schema.Schema { return st.t.Schema() }
func (st *serverTable) TTL() int64             { return st.t.TTL() }
func (st *serverTable) Insert(rows []schema.Row) error {
	return st.t.Insert(rows)
}
func (st *serverTable) Select(q core.Query) (RowIter, error) {
	it, err := st.t.Query(q)
	if err != nil {
		return nil, err
	}
	return it, nil
}
func (st *serverTable) Latest(prefix []ltval.Value) (schema.Row, bool, error) {
	return st.t.LatestRow(prefix)
}
func (st *serverTable) Delete(q core.Query, filter func(schema.Row) bool) (int64, error) {
	return st.t.DeleteWhere(q, filter)
}
func (st *serverTable) Stats() (TableStats, error) {
	s := st.t.Stats().Snapshot()
	return TableStats{
		RowsInserted: s.RowsInserted,
		RowsReturned: s.RowsReturned,
		RowsScanned:  s.RowsScanned,
		Queries:      s.Queries,
		DiskTablets:  int64(st.t.DiskTabletCount()),
		MemTablets:   int64(st.t.MemTabletCount()),
		DiskBytes:    st.t.DiskBytes(),
		RowEstimate:  st.t.RowEstimate(),
		Merges:       s.Merges,
		BytesFlushed: s.BytesFlushed,
		BytesMerged:  s.BytesMerged,
	}, nil
}
func (st *serverTable) AddColumn(col schema.Column) error { return st.t.AddColumn(col) }
func (st *serverTable) WidenColumn(name string) error     { return st.t.WidenColumn(name) }
func (st *serverTable) AlterTTL(ttl int64) error          { return st.t.AlterTTL(ttl) }

// ClientBackend executes statements over the wire protocol — the paper's
// deployment, where the adaptor lives in the application process (§3.1).
type ClientBackend struct {
	C *client.Client
}

var _ Backend = (*ClientBackend)(nil)

// OpenTable implements Backend.
func (b *ClientBackend) OpenTable(name string) (Table, error) {
	t, err := b.C.OpenTable(name)
	if err != nil {
		return nil, err
	}
	return &clientTable{t: t}, nil
}

// CreateTable implements Backend.
func (b *ClientBackend) CreateTable(name string, sc *schema.Schema, ttl int64) error {
	return b.C.CreateTable(name, sc, ttl)
}

// DropTable implements Backend.
func (b *ClientBackend) DropTable(name string) error { return b.C.DropTable(name) }

// ListTables implements Backend.
func (b *ClientBackend) ListTables() ([]string, error) { return b.C.ListTables() }

// FlushTable implements Backend.
func (b *ClientBackend) FlushTable(name string) error {
	t, err := b.C.OpenTable(name)
	if err != nil {
		return err
	}
	return t.FlushTable()
}

// Now implements Backend. The client has no server-clock RPC; wall time is
// what the paper's applications use.
func (b *ClientBackend) Now() int64 {
	return clock.Real{}.Now()
}

type clientTable struct{ t *client.Table }

func (ct *clientTable) Schema() *schema.Schema { return ct.t.Schema() }
func (ct *clientTable) TTL() int64             { return ct.t.TTL() }
func (ct *clientTable) Insert(rows []schema.Row) error {
	return ct.t.InsertNow(rows)
}
func (ct *clientTable) Select(q core.Query) (RowIter, error) {
	cq := client.Query{
		Lower: q.Lower, Upper: q.Upper,
		LowerInc: q.LowerInc, UpperInc: q.UpperInc,
		MinTs: q.MinTs, MaxTs: q.MaxTs,
		Descending: q.Descending, Limit: q.Limit,
	}
	return ct.t.Query(cq), nil
}
func (ct *clientTable) Latest(prefix []ltval.Value) (schema.Row, bool, error) {
	row, found, err := ct.t.LatestRow(prefix)
	return row, found, err
}
func (ct *clientTable) Delete(q core.Query, filter func(schema.Row) bool) (int64, error) {
	if filter != nil {
		return 0, fmt.Errorf("sql: DELETE over the wire supports only key/timestamp bounds; run residual predicates against an embedded server")
	}
	return ct.t.DeleteRange(client.Query{
		Lower: q.Lower, Upper: q.Upper,
		LowerInc: q.LowerInc, UpperInc: q.UpperInc,
		MinTs: q.MinTs, MaxTs: q.MaxTs,
	})
}
func (ct *clientTable) Stats() (TableStats, error) {
	s, err := ct.t.Stats()
	if err != nil {
		return TableStats{}, err
	}
	return TableStats{
		RowsInserted: s.RowsInserted,
		RowsReturned: s.RowsReturned,
		RowsScanned:  s.RowsScanned,
		Queries:      s.Queries,
		DiskTablets:  s.DiskTablets,
		MemTablets:   s.MemTablets,
		DiskBytes:    s.DiskBytes,
		RowEstimate:  s.RowEstimate,
		Merges:       s.Merges,
		BytesFlushed: s.BytesFlushed,
		BytesMerged:  s.BytesMerged,
	}, nil
}
func (ct *clientTable) AddColumn(col schema.Column) error {
	return ct.t.AddColumn(col.Name, col.Type, col.Default)
}
func (ct *clientTable) WidenColumn(name string) error { return ct.t.WidenColumn(name) }
func (ct *clientTable) AlterTTL(ttl int64) error      { return ct.t.AlterTTL(ttl) }
