package sql

import (
	"net"
	"strings"
	"testing"
	"time"

	"littletable/internal/client"
	"littletable/internal/clock"
	"littletable/internal/core"
	"littletable/internal/server"
)

func TestDeleteByKeyPrefix(t *testing.T) {
	e, clk := newEngine(t)
	setupUsage(t, e, clk)
	res := mustExec(t, e, "DELETE FROM usage WHERE network = 1 AND device = 2")
	if res.RowsAffected != 5 {
		t.Fatalf("deleted %d, want 5", res.RowsAffected)
	}
	cnt := mustExec(t, e, "SELECT COUNT(*) FROM usage")
	if cnt.Rows[0][0].Int != 25 {
		t.Fatalf("remaining %d, want 25", cnt.Rows[0][0].Int)
	}
	cnt = mustExec(t, e, "SELECT COUNT(*) FROM usage WHERE network = 1 AND device = 2")
	if cnt.Rows[0][0].Int != 0 {
		t.Fatal("deleted rows still visible")
	}
}

func TestDeleteByTimeRange(t *testing.T) {
	e, clk := newEngine(t)
	setupUsage(t, e, clk)
	res := mustExec(t, e, "DELETE FROM usage WHERE ts < NOW() - 2 m")
	if res.RowsAffected != 12 { // minutes 3 and 4 of 5, for 6 (network,device) pairs
		t.Fatalf("deleted %d, want 12", res.RowsAffected)
	}
}

func TestDeleteWithResidualInProcess(t *testing.T) {
	e, clk := newEngine(t)
	setupUsage(t, e, clk)
	// `bytes` is a value column: the box can't express it, so the residual
	// filter path runs (in-process backend only).
	res := mustExec(t, e, "DELETE FROM usage WHERE bytes = 1000")
	if res.RowsAffected != 2 { // one per network
		t.Fatalf("deleted %d, want 2", res.RowsAffected)
	}
}

func TestDeleteRequiresWhere(t *testing.T) {
	e, clk := newEngine(t)
	setupUsage(t, e, clk)
	if _, err := e.Exec("DELETE FROM usage"); err == nil {
		t.Fatal("unconditioned DELETE accepted")
	}
}

func TestDeleteOverWire(t *testing.T) {
	clk := clock.NewFake(1_782_018_420 * clock.Second)
	s, err := server.New(server.Options{
		Root:                t.TempDir(),
		Core:                core.Options{Clock: clk},
		MaintenanceInterval: 50 * time.Millisecond,
		Logf:                func(string, ...interface{}) {},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go s.Serve(lis)

	// Populate in-process (fake clock), then delete over the wire.
	se := NewEngine(&ServerBackend{S: s})
	setupUsage(t, se, clk)

	c, err := client.Dial(lis.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ce := NewEngine(&ClientBackend{C: c})
	res, err := ce.Exec("DELETE FROM usage WHERE network = 2")
	if err != nil {
		t.Fatal(err)
	}
	if res.RowsAffected != 15 {
		t.Fatalf("wire delete removed %d, want 15", res.RowsAffected)
	}
	// Residual predicates are rejected over the wire with a clear error.
	_, err = ce.Exec("DELETE FROM usage WHERE bytes = 1000")
	if err == nil || !strings.Contains(err.Error(), "over the wire") {
		t.Fatalf("residual wire delete: %v", err)
	}
	// Other wire statements still work on the same engine.
	cnt, err := ce.Exec("SELECT COUNT(*) FROM usage")
	if err != nil {
		t.Fatal(err)
	}
	if cnt.Rows[0][0].Int != 15 {
		t.Fatalf("post-delete count over wire: %d", cnt.Rows[0][0].Int)
	}
}

// TestSQLOverWireParity runs a representative statement set through both
// backends and compares results, pinning the two deployments together.
func TestSQLOverWireParity(t *testing.T) {
	clk := clock.NewFake(1_782_018_420 * clock.Second)
	s, err := server.New(server.Options{
		Root:                t.TempDir(),
		Core:                core.Options{Clock: clk},
		MaintenanceInterval: 50 * time.Millisecond,
		Logf:                func(string, ...interface{}) {},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go s.Serve(lis)
	c, err := client.Dial(lis.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	se := NewEngine(&ServerBackend{S: s})
	ce := NewEngine(&ClientBackend{C: c})
	setupUsage(t, se, clk)

	// DDL over the wire backend: create, flush, alter, drop.
	mustExecDDL := func(q string) {
		t.Helper()
		if _, err := ce.Exec(q); err != nil {
			t.Fatalf("%s over wire: %v", q, err)
		}
	}
	mustExecDDL("CREATE TABLE scratch (k int64, ts timestamp, PRIMARY KEY (k, ts)) TTL 1 w")
	mustExecDDL("INSERT INTO scratch (k) VALUES (1)")
	mustExecDDL("FLUSH TABLE scratch")
	mustExecDDL("ALTER TABLE scratch ADD COLUMN note string DEFAULT 'n'")
	mustExecDDL("ALTER TABLE scratch SET TTL 2 w")
	mustExecDDL("DROP TABLE scratch")

	queries := []string{
		"SELECT COUNT(*) FROM usage",
		"SELECT device, SUM(bytes) FROM usage WHERE network = 1 GROUP BY device",
		"SELECT network, device FROM usage ORDER BY network DESC LIMIT 4",
		"SELECT LATEST FROM usage WHERE network = 1 AND device = 3",
		"SHOW TABLES",
		"DESCRIBE usage",
	}
	for _, q := range queries {
		a := mustExec(t, se, q)
		b, err := ce.Exec(q)
		if err != nil {
			t.Fatalf("%s over wire: %v", q, err)
		}
		if len(a.Rows) != len(b.Rows) {
			t.Fatalf("%s: %d vs %d rows", q, len(a.Rows), len(b.Rows))
		}
		for i := range a.Rows {
			for j := range a.Rows[i] {
				if a.Rows[i][j].Compare(b.Rows[i][j]) != 0 {
					t.Fatalf("%s: row %d col %d differs: %v vs %v",
						q, i, j, a.Rows[i][j], b.Rows[i][j])
				}
			}
		}
	}
}

func TestShowStats(t *testing.T) {
	e, clk := newEngine(t)
	setupUsage(t, e, clk)
	mustExec(t, e, "FLUSH TABLE usage")
	mustExec(t, e, "SELECT COUNT(*) FROM usage")
	res := mustExec(t, e, "SHOW STATS usage")
	if len(res.Columns) != 2 || res.Columns[0] != "metric" {
		t.Fatalf("columns: %v", res.Columns)
	}
	byName := map[string]int64{}
	for _, r := range res.Rows {
		byName[string(r[0].Bytes)] = r[1].Int
	}
	if byName["rows_inserted"] != 30 {
		t.Errorf("rows_inserted = %d", byName["rows_inserted"])
	}
	if byName["disk_tablets"] == 0 {
		t.Error("disk_tablets = 0 after flush")
	}
	if byName["row_estimate"] != 30 {
		t.Errorf("row_estimate = %d", byName["row_estimate"])
	}
	if _, err := e.Exec("SHOW STATS missing_table"); err == nil {
		t.Error("SHOW STATS on missing table succeeded")
	}
}
