package sql

import (
	"fmt"
	"sort"
	"strings"

	"littletable/internal/core"
	"littletable/internal/ltval"
	"littletable/internal/schema"
)

// Backend abstracts where statements execute: in-process against a server
// (cmd/littletabled embeds one) or remotely over the wire (cmd/ltsql).
type Backend interface {
	OpenTable(name string) (Table, error)
	CreateTable(name string, sc *schema.Schema, ttl int64) error
	DropTable(name string) error
	ListTables() ([]string, error)
	FlushTable(name string) error
	// Now returns current engine time in microseconds, resolving NOW().
	Now() int64
}

// Table is the per-table surface the executor needs.
type Table interface {
	Schema() *schema.Schema
	TTL() int64
	Insert(rows []schema.Row) error
	Select(q core.Query) (RowIter, error)
	Latest(prefix []ltval.Value) (schema.Row, bool, error)
	// Delete removes the rows inside the box for which filter (nil = all)
	// holds, returning the count. Backends without server-side filtering
	// reject a non-nil filter.
	Delete(q core.Query, filter func(schema.Row) bool) (int64, error)
	// Stats reports the table's operational counters.
	Stats() (TableStats, error)
	AddColumn(col schema.Column) error
	WidenColumn(name string) error
	AlterTTL(ttl int64) error
}

// RowIter streams rows.
type RowIter interface {
	Next() bool
	Row() schema.Row
	Err() error
	Close() error
}

// TableStats are the operational counters SHOW STATS renders; both
// backends fill them (in-process from core.Stats, remote from the wire
// stats message).
type TableStats struct {
	RowsInserted int64
	RowsReturned int64
	RowsScanned  int64
	Queries      int64
	DiskTablets  int64
	MemTablets   int64
	DiskBytes    int64
	RowEstimate  int64
	Merges       int64
	BytesFlushed int64
	BytesMerged  int64
}

// Result is a statement's materialized output.
type Result struct {
	Columns []string
	Rows    [][]ltval.Value
	// RowsAffected counts inserted rows for INSERT.
	RowsAffected int
}

// Engine executes SQL statements against a Backend.
type Engine struct {
	b Backend
}

// NewEngine wraps a backend.
func NewEngine(b Backend) *Engine { return &Engine{b: b} }

// Exec parses and executes one statement.
func (e *Engine) Exec(query string) (*Result, error) {
	st, err := Parse(query)
	if err != nil {
		return nil, err
	}
	return e.ExecStmt(st)
}

// ExecStmt executes a parsed statement.
func (e *Engine) ExecStmt(st Stmt) (*Result, error) {
	switch s := st.(type) {
	case *SelectStmt:
		return e.execSelect(s)
	case *InsertStmt:
		return e.execInsert(s)
	case *CreateTableStmt:
		sc, err := schema.New(s.Columns, s.Key)
		if err != nil {
			return nil, err
		}
		if err := e.b.CreateTable(s.Table, sc, s.TTL); err != nil {
			return nil, err
		}
		return &Result{}, nil
	case *DropTableStmt:
		if err := e.b.DropTable(s.Table); err != nil {
			return nil, err
		}
		return &Result{}, nil
	case *ShowStatsStmt:
		t, err := e.b.OpenTable(s.Table)
		if err != nil {
			return nil, err
		}
		st, err := t.Stats()
		if err != nil {
			return nil, err
		}
		res := &Result{Columns: []string{"metric", "value"}}
		add := func(name string, v int64) {
			res.Rows = append(res.Rows, []ltval.Value{
				ltval.NewString(name), ltval.NewInt64(v),
			})
		}
		add("rows_inserted", st.RowsInserted)
		add("rows_returned", st.RowsReturned)
		add("rows_scanned", st.RowsScanned)
		add("queries", st.Queries)
		add("disk_tablets", st.DiskTablets)
		add("mem_tablets", st.MemTablets)
		add("disk_bytes", st.DiskBytes)
		add("row_estimate", st.RowEstimate)
		add("merges", st.Merges)
		add("bytes_flushed", st.BytesFlushed)
		add("bytes_merged", st.BytesMerged)
		return res, nil
	case *ShowTablesStmt:
		names, err := e.b.ListTables()
		if err != nil {
			return nil, err
		}
		res := &Result{Columns: []string{"table"}}
		for _, n := range names {
			res.Rows = append(res.Rows, []ltval.Value{ltval.NewString(n)})
		}
		return res, nil
	case *DescribeStmt:
		t, err := e.b.OpenTable(s.Table)
		if err != nil {
			return nil, err
		}
		sc := t.Schema()
		res := &Result{Columns: []string{"column", "type", "key"}}
		for i, c := range sc.Columns {
			keyPos := ""
			for ki, k := range sc.Key {
				if k == i {
					keyPos = fmt.Sprintf("%d", ki+1)
				}
			}
			res.Rows = append(res.Rows, []ltval.Value{
				ltval.NewString(c.Name), ltval.NewString(c.Type.String()), ltval.NewString(keyPos),
			})
		}
		return res, nil
	case *AlterStmt:
		t, err := e.b.OpenTable(s.Table)
		if err != nil {
			return nil, err
		}
		switch {
		case s.AddColumn != nil:
			err = t.AddColumn(*s.AddColumn)
		case s.WidenColumn != "":
			err = t.WidenColumn(s.WidenColumn)
		case s.SetTTL != nil:
			err = t.AlterTTL(*s.SetTTL)
		}
		if err != nil {
			return nil, err
		}
		return &Result{}, nil
	case *LatestStmt:
		return e.execLatest(s)
	case *DeleteStmt:
		return e.execDelete(s)
	case *FlushStmt:
		if err := e.b.FlushTable(s.Table); err != nil {
			return nil, err
		}
		return &Result{}, nil
	default:
		return nil, fmt.Errorf("sql: unsupported statement %T", st)
	}
}

func (e *Engine) execInsert(s *InsertStmt) (*Result, error) {
	t, err := e.b.OpenTable(s.Table)
	if err != nil {
		return nil, err
	}
	sc := t.Schema()
	cols := s.Columns
	if len(cols) == 0 {
		for _, c := range sc.Columns {
			cols = append(cols, c.Name)
		}
	}
	idx := make([]int, len(cols))
	for i, name := range cols {
		j := sc.ColumnIndex(name)
		if j < 0 {
			return nil, fmt.Errorf("sql: unknown column %q", name)
		}
		idx[i] = j
	}
	now := e.b.Now()
	rows := make([]schema.Row, 0, len(s.Rows))
	for _, exprs := range s.Rows {
		if len(exprs) != len(cols) {
			return nil, fmt.Errorf("sql: row has %d values for %d columns", len(exprs), len(cols))
		}
		row := sc.DefaultsRow()
		tsSet := false
		for i, ex := range exprs {
			colIdx := idx[i]
			v, err := resolveLit(ex, sc.Columns[colIdx].Type, now)
			if err != nil {
				return nil, err
			}
			row[colIdx] = v
			if colIdx == sc.TsIndex() {
				tsSet = true
			}
		}
		if !tsSet || (row[sc.TsIndex()].Int == 0 && !explicitZeroTs(exprs, idx, sc.TsIndex())) {
			// Omitted timestamp: the server-sets-current-time rule (§3.1).
			sc.SetTs(row, now)
		}
		rows = append(rows, row)
	}
	if err := t.Insert(rows); err != nil {
		return nil, err
	}
	return &Result{RowsAffected: len(rows)}, nil
}

func explicitZeroTs(exprs []Expr, idx []int, tsIdx int) bool {
	for i, ex := range exprs {
		if idx[i] != tsIdx {
			continue
		}
		if l, ok := ex.(*Lit); ok && l.IsNumber && l.Int == 0 {
			return true
		}
	}
	return false
}

// execDelete plans the WHERE clause into the engine's box plus a residual
// predicate and bulk-deletes (§7's privacy-compliance feature). Over the
// wire only the box ships; a residual needs the in-process backend.
func (e *Engine) execDelete(s *DeleteStmt) (*Result, error) {
	t, err := e.b.OpenTable(s.Table)
	if err != nil {
		return nil, err
	}
	sc := t.Schema()
	now := e.b.Now()
	pl, err := planWhere(sc, s.Where, now)
	if err != nil {
		return nil, err
	}
	if pl.q.MinTs > pl.q.MaxTs {
		return &Result{}, nil
	}
	var filter func(schema.Row) bool
	if pl.residual != nil && !pl.exact {
		filter = func(row schema.Row) bool {
			ok, err := evalBool(sc, pl.residual, row, now)
			return err == nil && ok
		}
	}
	n, err := t.Delete(pl.q, filter)
	if err != nil {
		return nil, err
	}
	return &Result{RowsAffected: int(n)}, nil
}

func (e *Engine) execLatest(s *LatestStmt) (*Result, error) {
	t, err := e.b.OpenTable(s.Table)
	if err != nil {
		return nil, err
	}
	sc := t.Schema()
	// WHERE must be equalities on a key prefix.
	conj := flattenAnd(s.Where)
	if s.Where == nil || conj == nil {
		return nil, fmt.Errorf("sql: SELECT LATEST needs WHERE with key equalities")
	}
	now := e.b.Now()
	byCol := map[string]ltval.Value{}
	for _, c := range conj {
		col, op, v, ok, err := asColConstraint(sc, c, now)
		if err != nil {
			return nil, err
		}
		if !ok || op != "=" {
			return nil, fmt.Errorf("sql: SELECT LATEST supports only column = literal")
		}
		byCol[col] = v
	}
	var prefix []ltval.Value
	for _, k := range sc.Key {
		v, ok := byCol[sc.Columns[k].Name]
		if !ok {
			break
		}
		prefix = append(prefix, v)
	}
	if len(prefix) == 0 || len(prefix) != len(byCol) {
		return nil, fmt.Errorf("sql: SELECT LATEST needs equalities on a key prefix")
	}
	row, found, err := t.Latest(prefix)
	if err != nil {
		return nil, err
	}
	res := &Result{Columns: columnNames(sc)}
	if found {
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

func columnNames(sc *schema.Schema) []string {
	out := make([]string, len(sc.Columns))
	for i, c := range sc.Columns {
		out[i] = c.Name
	}
	return out
}

func (e *Engine) execSelect(s *SelectStmt) (*Result, error) {
	t, err := e.b.OpenTable(s.Table)
	if err != nil {
		return nil, err
	}
	sc := t.Schema()
	now := e.b.Now()
	pl, err := planWhere(sc, s.Where, now)
	if err != nil {
		return nil, err
	}
	if pl.q.MinTs > pl.q.MaxTs {
		return emptyResult(s, sc)
	}
	if pl.exact {
		// The box expresses the whole WHERE; skip per-row re-evaluation.
		pl.residual = nil
	}

	// ORDER BY on the first key column descending flips the scan; any
	// other order is applied as a final sort.
	needSort := false
	if len(s.OrderBy) > 0 {
		if matchesKeyOrder(sc, s.OrderBy) {
			pl.q.Descending = s.OrderBy[0].Desc
		} else {
			needSort = true
		}
	}

	hasAgg := false
	for _, it := range s.Items {
		if it.Agg != "" {
			hasAgg = true
		}
	}
	if hasAgg || len(s.GroupBy) > 0 {
		return e.selectAggregate(s, t, sc, pl, now, needSort)
	}

	// Plain projection.
	proj, names, err := projection(s.Items, sc)
	if err != nil {
		return nil, err
	}
	it, err := t.Select(pl.q)
	if err != nil {
		return nil, err
	}
	defer it.Close()
	res := &Result{Columns: names}
	for it.Next() {
		row := it.Row()
		if pl.residual != nil {
			keep, err := evalBool(sc, pl.residual, row, now)
			if err != nil {
				return nil, err
			}
			if !keep {
				continue
			}
		}
		out := make([]ltval.Value, len(proj))
		for i, j := range proj {
			out[i] = row[j]
		}
		res.Rows = append(res.Rows, cloneValues(out))
		if s.Limit > 0 && !needSort && len(res.Rows) >= s.Limit {
			break
		}
	}
	if err := it.Err(); err != nil {
		return nil, err
	}
	if needSort {
		if err := sortResult(res, s.OrderBy); err != nil {
			return nil, err
		}
		if s.Limit > 0 && len(res.Rows) > s.Limit {
			res.Rows = res.Rows[:s.Limit]
		}
	}
	return res, nil
}

func emptyResult(s *SelectStmt, sc *schema.Schema) (*Result, error) {
	proj, names, err := projection(s.Items, sc)
	_ = proj
	if err != nil {
		// Aggregate select lists fail projection; name them generically.
		names = nil
		for _, it := range s.Items {
			names = append(names, itemName(it))
		}
	}
	return &Result{Columns: names}, nil
}

// projection resolves plain select items to column indexes.
func projection(items []SelectItem, sc *schema.Schema) ([]int, []string, error) {
	var proj []int
	var names []string
	for _, it := range items {
		switch {
		case it.Star:
			for i, c := range sc.Columns {
				proj = append(proj, i)
				names = append(names, c.Name)
			}
		case it.Agg != "":
			return nil, nil, fmt.Errorf("sql: aggregate %s mixed with plain projection requires GROUP BY", it.Agg)
		default:
			i := sc.ColumnIndex(it.Col)
			if i < 0 {
				return nil, nil, fmt.Errorf("sql: unknown column %q", it.Col)
			}
			proj = append(proj, i)
			names = append(names, itemName(it))
		}
	}
	return proj, names, nil
}

func itemName(it SelectItem) string {
	if it.Alias != "" {
		return it.Alias
	}
	if it.Agg != "" {
		col := it.Col
		if col == "" {
			col = "*"
		}
		return strings.ToLower(it.Agg) + "(" + col + ")"
	}
	return it.Col
}

// aggState accumulates one aggregate for one group.
type aggState struct {
	count int64
	sumI  int64
	sumF  float64
	min   ltval.Value
	max   ltval.Value
	seen  bool
	isF   bool
}

func (a *aggState) add(v ltval.Value) {
	a.count++
	switch v.Type {
	case ltval.Int32, ltval.Int64, ltval.Timestamp:
		a.sumI += v.Int
		a.sumF += float64(v.Int)
	case ltval.Double:
		a.isF = true
		a.sumF += v.Float
	}
	if !a.seen {
		a.min, a.max, a.seen = v, v, true
		return
	}
	if v.Compare(a.min) < 0 {
		a.min = v
	}
	if v.Compare(a.max) > 0 {
		a.max = v
	}
}

func (a *aggState) result(agg string) ltval.Value {
	switch agg {
	case "COUNT":
		return ltval.NewInt64(a.count)
	case "SUM":
		if a.isF {
			return ltval.NewDouble(a.sumF)
		}
		return ltval.NewInt64(a.sumI)
	case "AVG":
		if a.count == 0 {
			return ltval.NewDouble(0)
		}
		return ltval.NewDouble(a.sumF / float64(a.count))
	case "MIN":
		if !a.seen {
			// No NULLs in LittleTable (§3.5): empty MIN/MAX yields the
			// in-band sentinel 0, like the applications' own -1 sentinels.
			return ltval.NewInt64(0)
		}
		return a.min
	case "MAX":
		if !a.seen {
			return ltval.NewInt64(0)
		}
		return a.max
	}
	return ltval.Value{}
}

func (e *Engine) selectAggregate(s *SelectStmt, t Table, sc *schema.Schema, pl plan, now int64, needSort bool) (*Result, error) {
	// Validate: every plain item must be a GROUP BY column.
	groupIdx := make([]int, 0, len(s.GroupBy))
	inGroup := map[string]bool{}
	for _, g := range s.GroupBy {
		i := sc.ColumnIndex(g)
		if i < 0 {
			return nil, fmt.Errorf("sql: unknown GROUP BY column %q", g)
		}
		groupIdx = append(groupIdx, i)
		inGroup[g] = true
	}
	type outCol struct {
		agg    string
		colIdx int // -1 for COUNT(*)
	}
	var outs []outCol
	var names []string
	for _, it := range s.Items {
		if it.Star {
			return nil, fmt.Errorf("sql: * not allowed with aggregates")
		}
		if it.Agg == "" {
			if !inGroup[it.Col] {
				return nil, fmt.Errorf("sql: column %q must appear in GROUP BY", it.Col)
			}
			outs = append(outs, outCol{agg: "", colIdx: sc.ColumnIndex(it.Col)})
		} else {
			ci := -1
			if it.Col != "" {
				ci = sc.ColumnIndex(it.Col)
				if ci < 0 {
					return nil, fmt.Errorf("sql: unknown column %q", it.Col)
				}
			}
			outs = append(outs, outCol{agg: it.Agg, colIdx: ci})
		}
		names = append(names, itemName(it))
	}

	it, err := t.Select(pl.q)
	if err != nil {
		return nil, err
	}
	defer it.Close()

	// Hash aggregation preserving first-seen order. When the group columns
	// are a key prefix, first-seen order IS key order — the sorted-stream
	// aggregation the paper's adaptor performs "without resorting" (§3.1).
	type group struct {
		keyVals []ltval.Value
		aggs    []aggState
	}
	var order []string
	groups := map[string]*group{}
	var kb []byte
	for it.Next() {
		row := it.Row()
		if pl.residual != nil {
			keep, err := evalBool(sc, pl.residual, row, now)
			if err != nil {
				return nil, err
			}
			if !keep {
				continue
			}
		}
		kb = kb[:0]
		for _, gi := range groupIdx {
			kb = row[gi].Append(kb)
			kb = append(kb, 0xfe)
		}
		k := string(kb)
		g := groups[k]
		if g == nil {
			g = &group{aggs: make([]aggState, len(outs))}
			for _, gi := range groupIdx {
				g.keyVals = append(g.keyVals, cloneValue(row[gi]))
			}
			groups[k] = g
			order = append(order, k)
		}
		for i, oc := range outs {
			if oc.agg == "" {
				continue
			}
			if oc.colIdx < 0 {
				g.aggs[i].count++
			} else {
				g.aggs[i].add(row[oc.colIdx])
			}
		}
	}
	if err := it.Err(); err != nil {
		return nil, err
	}
	// Global aggregation (no GROUP BY) yields exactly one row even over an
	// empty selection: COUNT(*) of nothing is 0.
	if len(groupIdx) == 0 && len(order) == 0 {
		groups[""] = &group{aggs: make([]aggState, len(outs))}
		order = append(order, "")
	}

	res := &Result{Columns: names}
	for _, k := range order {
		g := groups[k]
		out := make([]ltval.Value, len(outs))
		for i, oc := range outs {
			if oc.agg == "" {
				// Find the value among group key columns.
				for gi, idx := range groupIdx {
					if idx == oc.colIdx {
						out[i] = g.keyVals[gi]
					}
				}
			} else {
				out[i] = g.aggs[i].result(oc.agg)
			}
		}
		res.Rows = append(res.Rows, out)
	}
	if needSort {
		if err := sortResult(res, s.OrderBy); err != nil {
			return nil, err
		}
	}
	if s.Limit > 0 && len(res.Rows) > s.Limit {
		res.Rows = res.Rows[:s.Limit]
	}
	return res, nil
}

// matchesKeyOrder reports whether the ORDER BY is exactly a prefix of the
// primary key with a uniform direction (the only order the engine can
// stream natively).
func matchesKeyOrder(sc *schema.Schema, order []OrderKey) bool {
	if len(order) > sc.KeyLen() {
		return false
	}
	for i, ok := range order {
		if ok.Col != sc.Columns[sc.Key[i]].Name {
			return false
		}
		if ok.Desc != order[0].Desc {
			return false
		}
	}
	return true
}

// sortResult sorts materialized output rows by the order keys.
func sortResult(res *Result, order []OrderKey) error {
	idx := make([]int, len(order))
	for i, ok := range order {
		found := -1
		for j, name := range res.Columns {
			if name == ok.Col {
				found = j
			}
		}
		if found < 0 {
			return fmt.Errorf("sql: ORDER BY column %q not in output", ok.Col)
		}
		idx[i] = found
	}
	sort.SliceStable(res.Rows, func(a, b int) bool {
		for i, j := range idx {
			c := compareValues(res.Rows[a][j], res.Rows[b][j])
			if c != 0 {
				if order[i].Desc {
					return c > 0
				}
				return c < 0
			}
		}
		return false
	})
	return nil
}

func cloneValue(v ltval.Value) ltval.Value {
	if v.Bytes != nil {
		b := make([]byte, len(v.Bytes))
		copy(b, v.Bytes)
		v.Bytes = b
	}
	return v
}

func cloneValues(vs []ltval.Value) []ltval.Value {
	out := make([]ltval.Value, len(vs))
	for i, v := range vs {
		out[i] = cloneValue(v)
	}
	return out
}
