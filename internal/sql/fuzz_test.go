package sql

import "testing"

// FuzzParse: the parser must never panic on arbitrary input — ltsql feeds
// it whatever the operator types.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"SELECT * FROM usage",
		"SELECT device, SUM(bytes) FROM usage WHERE network = 1 AND ts >= NOW() - 1 h GROUP BY device ORDER BY device DESC LIMIT 10",
		"INSERT INTO t (a, b) VALUES (1, 'x''y'), (2, x'beef')",
		"CREATE TABLE t (a int64, ts timestamp, s string DEFAULT 'd', PRIMARY KEY (a, ts)) TTL 365 d",
		"ALTER TABLE t ADD COLUMN c double DEFAULT 1.5",
		"ALTER TABLE t WIDEN COLUMN c",
		"ALTER TABLE t SET TTL 1 w",
		"DELETE FROM t WHERE a BETWEEN 1 AND 2 OR NOT b = 'z'",
		"SELECT LATEST FROM t WHERE a = 1",
		"FLUSH TABLE t; -- comment",
		"DROP TABLE t",
		"SHOW TABLES",
		"DESCRIBE t",
		"SELECT -1.5e10 FROM",
		"''''''",
		"x'",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		Parse(input) // must not panic
	})
}
