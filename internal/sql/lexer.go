// Package sql implements LittleTable's SQL front end. The paper's first
// XML query language saw sluggish uptake, and "developer uptake was
// sluggish until a subsequent version added SQL support" (§2.3.2); this
// package provides the dialect LittleTable needs: CREATE/DROP/ALTER TABLE,
// INSERT, and SELECT with 2-D-bounded WHERE clauses, aggregates, GROUP BY,
// ORDER BY, and LIMIT, planned onto the engine's bounded ordered scans.
package sql

import (
	"fmt"
	"strings"
	"unicode"
)

// tokKind classifies lexer tokens.
type tokKind int

const (
	tokEOF tokKind = iota
	tokIdent
	tokKeyword
	tokNumber
	tokString // single-quoted
	tokBlob   // x'hex'
	tokSymbol // punctuation and operators
)

type token struct {
	kind tokKind
	text string // keywords upper-cased; idents as written
	pos  int
}

// keywords recognized by the dialect (case-insensitive).
var keywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "AND": true, "OR": true,
	"NOT": true, "GROUP": true, "BY": true, "ORDER": true, "ASC": true,
	"DESC": true, "LIMIT": true, "INSERT": true, "INTO": true,
	"VALUES": true, "CREATE": true, "TABLE": true, "PRIMARY": true,
	"KEY": true, "TTL": true, "DROP": true, "SHOW": true, "TABLES": true,
	"DESCRIBE": true, "DELETE": true, "ALTER": true, "ADD": true, "COLUMN": true,
	"WIDEN": true, "SET": true, "AS": true, "BETWEEN": true, "NOW": true,
	"COUNT": true, "SUM": true, "AVG": true, "MIN": true, "MAX": true,
	"DEFAULT": true, "LATEST": true, "FLUSH": true, "STATS": true,
	"INTERVAL": true,
}

// Error is a SQL parse or planning error with source position.
type Error struct {
	Pos int
	Msg string
}

// Error implements error.
func (e *Error) Error() string { return fmt.Sprintf("sql: at %d: %s", e.Pos, e.Msg) }

func errf(pos int, format string, args ...interface{}) error {
	return &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

// lex tokenizes the input.
func lex(input string) ([]token, error) {
	var toks []token
	i := 0
	n := len(input)
	for i < n {
		c := input[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '-' && i+1 < n && input[i+1] == '-':
			// Line comment.
			for i < n && input[i] != '\n' {
				i++
			}
		case isIdentStart(c):
			start := i
			for i < n && isIdentPart(input[i]) {
				i++
			}
			word := input[start:i]
			up := strings.ToUpper(word)
			// x'hex' blob literal.
			if up == "X" && i < n && input[i] == '\'' {
				j := i + 1
				for j < n && input[j] != '\'' {
					j++
				}
				if j >= n {
					return nil, errf(start, "unterminated blob literal")
				}
				toks = append(toks, token{kind: tokBlob, text: input[i+1 : j], pos: start})
				i = j + 1
				continue
			}
			if keywords[up] {
				toks = append(toks, token{kind: tokKeyword, text: up, pos: start})
			} else {
				toks = append(toks, token{kind: tokIdent, text: word, pos: start})
			}
		case c >= '0' && c <= '9' || (c == '.' && i+1 < n && input[i+1] >= '0' && input[i+1] <= '9'):
			start := i
			seenDot, seenExp := false, false
			for i < n {
				d := input[i]
				if d >= '0' && d <= '9' {
					i++
				} else if d == '.' && !seenDot && !seenExp {
					seenDot = true
					i++
				} else if (d == 'e' || d == 'E') && !seenExp {
					seenExp = true
					i++
					if i < n && (input[i] == '+' || input[i] == '-') {
						i++
					}
				} else {
					break
				}
			}
			toks = append(toks, token{kind: tokNumber, text: input[start:i], pos: start})
		case c == '\'':
			start := i
			i++
			var sb strings.Builder
			for {
				if i >= n {
					return nil, errf(start, "unterminated string literal")
				}
				if input[i] == '\'' {
					if i+1 < n && input[i+1] == '\'' { // escaped quote
						sb.WriteByte('\'')
						i += 2
						continue
					}
					i++
					break
				}
				sb.WriteByte(input[i])
				i++
			}
			toks = append(toks, token{kind: tokString, text: sb.String(), pos: start})
		default:
			start := i
			// Multi-char operators first.
			if i+1 < n {
				two := input[i : i+2]
				if two == "<=" || two == ">=" || two == "!=" || two == "<>" {
					toks = append(toks, token{kind: tokSymbol, text: two, pos: start})
					i += 2
					continue
				}
			}
			switch c {
			case '(', ')', ',', '*', '=', '<', '>', '+', '-', ';', '.':
				toks = append(toks, token{kind: tokSymbol, text: string(c), pos: start})
				i++
			default:
				if unicode.IsPrint(rune(c)) {
					return nil, errf(i, "unexpected character %q", c)
				}
				return nil, errf(i, "unexpected byte 0x%02x", c)
			}
		}
	}
	toks = append(toks, token{kind: tokEOF, pos: n})
	return toks, nil
}

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentPart(c byte) bool {
	return isIdentStart(c) || (c >= '0' && c <= '9')
}
