package sql

import (
	"encoding/hex"
	"strconv"
	"strings"

	"littletable/internal/clock"
	"littletable/internal/ltval"
	"littletable/internal/schema"
)

// Parse parses one SQL statement.
func Parse(input string) (Stmt, error) {
	toks, err := lex(input)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	st, err := p.statement()
	if err != nil {
		return nil, err
	}
	p.accept(tokSymbol, ";")
	if !p.at(tokEOF, "") {
		return nil, errf(p.cur().pos, "trailing input after statement")
	}
	return st, nil
}

type parser struct {
	toks []token
	i    int
}

func (p *parser) cur() token  { return p.toks[p.i] }
func (p *parser) next() token { t := p.toks[p.i]; p.i++; return t }

func (p *parser) at(k tokKind, text string) bool {
	t := p.cur()
	if t.kind != k {
		return false
	}
	return text == "" || t.text == text
}

// accept consumes the token if it matches.
func (p *parser) accept(k tokKind, text string) bool {
	if p.at(k, text) {
		p.i++
		return true
	}
	return false
}

// expect consumes a required token.
func (p *parser) expect(k tokKind, text string) (token, error) {
	if p.at(k, text) {
		return p.next(), nil
	}
	t := p.cur()
	want := text
	if want == "" {
		want = map[tokKind]string{tokIdent: "identifier", tokNumber: "number", tokString: "string"}[k]
	}
	return token{}, errf(t.pos, "expected %s, found %q", want, t.text)
}

func (p *parser) ident() (string, error) {
	// Allow keywords that double as common column names (KEY, TTL would be
	// confusing; restrict to pure identifiers).
	t, err := p.expect(tokIdent, "")
	if err != nil {
		return "", err
	}
	return t.text, nil
}

func (p *parser) statement() (Stmt, error) {
	t := p.cur()
	if t.kind != tokKeyword {
		return nil, errf(t.pos, "expected statement keyword, found %q", t.text)
	}
	switch t.text {
	case "SELECT":
		return p.selectStmt()
	case "INSERT":
		return p.insertStmt()
	case "CREATE":
		return p.createStmt()
	case "DROP":
		return p.dropStmt()
	case "SHOW":
		p.next()
		if p.accept(tokKeyword, "STATS") {
			name, err := p.ident()
			if err != nil {
				return nil, err
			}
			return &ShowStatsStmt{Table: name}, nil
		}
		if _, err := p.expect(tokKeyword, "TABLES"); err != nil {
			return nil, err
		}
		return &ShowTablesStmt{}, nil
	case "DESCRIBE":
		p.next()
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		return &DescribeStmt{Table: name}, nil
	case "ALTER":
		return p.alterStmt()
	case "DELETE":
		p.next()
		if _, err := p.expect(tokKeyword, "FROM"); err != nil {
			return nil, err
		}
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		st := &DeleteStmt{Table: name}
		if _, err := p.expect(tokKeyword, "WHERE"); err != nil {
			// Deleting a whole table is DROP + CREATE (§3.5); an
			// unconditioned DELETE is almost certainly a mistake.
			return nil, err
		}
		w, err := p.orExpr()
		if err != nil {
			return nil, err
		}
		st.Where = w
		return st, nil
	case "FLUSH":
		p.next()
		if _, err := p.expect(tokKeyword, "TABLE"); err != nil {
			return nil, err
		}
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		return &FlushStmt{Table: name}, nil
	default:
		return nil, errf(t.pos, "unsupported statement %q", t.text)
	}
}

func (p *parser) selectStmt() (Stmt, error) {
	p.next() // SELECT
	// SELECT LATEST FROM t WHERE ...
	if p.accept(tokKeyword, "LATEST") {
		if _, err := p.expect(tokKeyword, "FROM"); err != nil {
			return nil, err
		}
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		st := &LatestStmt{Table: name}
		if p.accept(tokKeyword, "WHERE") {
			w, err := p.orExpr()
			if err != nil {
				return nil, err
			}
			st.Where = w
		}
		return st, nil
	}
	st := &SelectStmt{}
	for {
		item, err := p.selectItem()
		if err != nil {
			return nil, err
		}
		st.Items = append(st.Items, item)
		if !p.accept(tokSymbol, ",") {
			break
		}
	}
	if _, err := p.expect(tokKeyword, "FROM"); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	st.Table = name
	if p.accept(tokKeyword, "WHERE") {
		w, err := p.orExpr()
		if err != nil {
			return nil, err
		}
		st.Where = w
	}
	if p.accept(tokKeyword, "GROUP") {
		if _, err := p.expect(tokKeyword, "BY"); err != nil {
			return nil, err
		}
		for {
			col, err := p.ident()
			if err != nil {
				return nil, err
			}
			st.GroupBy = append(st.GroupBy, col)
			if !p.accept(tokSymbol, ",") {
				break
			}
		}
	}
	if p.accept(tokKeyword, "ORDER") {
		if _, err := p.expect(tokKeyword, "BY"); err != nil {
			return nil, err
		}
		for {
			col, err := p.ident()
			if err != nil {
				return nil, err
			}
			ok := OrderKey{Col: col}
			if p.accept(tokKeyword, "DESC") {
				ok.Desc = true
			} else {
				p.accept(tokKeyword, "ASC")
			}
			st.OrderBy = append(st.OrderBy, ok)
			if !p.accept(tokSymbol, ",") {
				break
			}
		}
	}
	if p.accept(tokKeyword, "LIMIT") {
		t, err := p.expect(tokNumber, "")
		if err != nil {
			return nil, err
		}
		n, err := strconv.Atoi(t.text)
		if err != nil || n < 0 {
			return nil, errf(t.pos, "invalid LIMIT %q", t.text)
		}
		st.Limit = n
	}
	return st, nil
}

func (p *parser) selectItem() (SelectItem, error) {
	t := p.cur()
	if p.accept(tokSymbol, "*") {
		return SelectItem{Star: true}, nil
	}
	if t.kind == tokKeyword && isAgg(t.text) {
		p.next()
		if _, err := p.expect(tokSymbol, "("); err != nil {
			return SelectItem{}, err
		}
		item := SelectItem{Agg: t.text}
		if p.accept(tokSymbol, "*") {
			if t.text != "COUNT" {
				return SelectItem{}, errf(t.pos, "%s(*) is not valid", t.text)
			}
		} else {
			col, err := p.ident()
			if err != nil {
				return SelectItem{}, err
			}
			item.Col = col
		}
		if _, err := p.expect(tokSymbol, ")"); err != nil {
			return SelectItem{}, err
		}
		if p.accept(tokKeyword, "AS") {
			alias, err := p.ident()
			if err != nil {
				return SelectItem{}, err
			}
			item.Alias = alias
		}
		return item, nil
	}
	col, err := p.ident()
	if err != nil {
		return SelectItem{}, err
	}
	item := SelectItem{Col: col}
	if p.accept(tokKeyword, "AS") {
		alias, err := p.ident()
		if err != nil {
			return SelectItem{}, err
		}
		item.Alias = alias
	}
	return item, nil
}

func isAgg(s string) bool {
	switch s {
	case "COUNT", "SUM", "AVG", "MIN", "MAX":
		return true
	}
	return false
}

// orExpr := andExpr (OR andExpr)*
func (p *parser) orExpr() (Expr, error) {
	left, err := p.andExpr()
	if err != nil {
		return nil, err
	}
	for p.accept(tokKeyword, "OR") {
		right, err := p.andExpr()
		if err != nil {
			return nil, err
		}
		left = &Logic{Op: "OR", Left: left, Right: right}
	}
	return left, nil
}

// andExpr := unary (AND unary)*
func (p *parser) andExpr() (Expr, error) {
	left, err := p.unaryExpr()
	if err != nil {
		return nil, err
	}
	for p.accept(tokKeyword, "AND") {
		right, err := p.unaryExpr()
		if err != nil {
			return nil, err
		}
		left = &Logic{Op: "AND", Left: left, Right: right}
	}
	return left, nil
}

func (p *parser) unaryExpr() (Expr, error) {
	if p.accept(tokKeyword, "NOT") {
		e, err := p.unaryExpr()
		if err != nil {
			return nil, err
		}
		return &Not{E: e}, nil
	}
	if p.accept(tokSymbol, "(") {
		e, err := p.orExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokSymbol, ")"); err != nil {
			return nil, err
		}
		return e, nil
	}
	return p.comparison()
}

// comparison := operand (op operand | BETWEEN operand AND operand)
func (p *parser) comparison() (Expr, error) {
	left, err := p.operand()
	if err != nil {
		return nil, err
	}
	t := p.cur()
	if p.accept(tokKeyword, "BETWEEN") {
		col, ok := left.(*ColRef)
		if !ok {
			return nil, errf(t.pos, "BETWEEN requires a column on the left")
		}
		lo, err := p.operand()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokKeyword, "AND"); err != nil {
			return nil, err
		}
		hi, err := p.operand()
		if err != nil {
			return nil, err
		}
		return &Between{Col: col, Lo: lo, Hi: hi, Pos: t.pos}, nil
	}
	if t.kind == tokSymbol {
		op := t.text
		if op == "<>" {
			op = "!="
		}
		switch op {
		case "=", "!=", "<", "<=", ">", ">=":
			p.next()
			right, err := p.operand()
			if err != nil {
				return nil, err
			}
			return &Cmp{Op: op, Left: left, Right: right, Pos: t.pos}, nil
		}
	}
	return nil, errf(t.pos, "expected comparison operator, found %q", t.text)
}

// operand := column | literal | NOW() [± duration]
func (p *parser) operand() (Expr, error) {
	t := p.cur()
	switch {
	case t.kind == tokIdent:
		p.next()
		return &ColRef{Name: t.text, Pos: t.pos}, nil
	case t.kind == tokKeyword && t.text == "NOW":
		p.next()
		if _, err := p.expect(tokSymbol, "("); err != nil {
			return nil, err
		}
		if _, err := p.expect(tokSymbol, ")"); err != nil {
			return nil, err
		}
		now := &NowExpr{Pos: t.pos}
		for {
			if p.accept(tokSymbol, "-") {
				d, err := p.duration()
				if err != nil {
					return nil, err
				}
				now.OffsetUs -= d
			} else if p.accept(tokSymbol, "+") {
				d, err := p.duration()
				if err != nil {
					return nil, err
				}
				now.OffsetUs += d
			} else {
				break
			}
		}
		return now, nil
	case t.kind == tokNumber || (t.kind == tokSymbol && t.text == "-"):
		return p.numberLit()
	case t.kind == tokString:
		p.next()
		s := t.text
		return &Lit{Str: &s, Pos: t.pos}, nil
	case t.kind == tokBlob:
		p.next()
		raw, err := hex.DecodeString(t.text)
		if err != nil {
			return nil, errf(t.pos, "invalid blob hex: %v", err)
		}
		return &Lit{Blob: raw, Pos: t.pos}, nil
	default:
		return nil, errf(t.pos, "expected value, found %q", t.text)
	}
}

func (p *parser) numberLit() (Expr, error) {
	neg := p.accept(tokSymbol, "-")
	t, err := p.expect(tokNumber, "")
	if err != nil {
		return nil, err
	}
	l := &Lit{IsNumber: true, Pos: t.pos}
	if strings.ContainsAny(t.text, ".eE") {
		f, err := strconv.ParseFloat(t.text, 64)
		if err != nil {
			return nil, errf(t.pos, "invalid number %q", t.text)
		}
		if neg {
			f = -f
		}
		l.IsFloat = true
		l.Float = f
		l.Int = int64(f)
	} else {
		v, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, errf(t.pos, "invalid integer %q", t.text)
		}
		if neg {
			v = -v
		}
		l.Int = v
		l.Float = float64(v)
	}
	return l, nil
}

// duration := INTERVAL? number unit — e.g. "7d", "INTERVAL 1 h", "90s".
// The lexer splits "7d" into number then ident.
func (p *parser) duration() (int64, error) {
	p.accept(tokKeyword, "INTERVAL")
	t, err := p.expect(tokNumber, "")
	if err != nil {
		return 0, err
	}
	n, err := strconv.ParseInt(t.text, 10, 64)
	if err != nil {
		return 0, errf(t.pos, "invalid duration %q", t.text)
	}
	unit := int64(clock.Microsecond)
	if p.cur().kind == tokIdent {
		u := strings.ToLower(p.next().text)
		switch u {
		case "us":
			unit = clock.Microsecond
		case "ms":
			unit = clock.Millisecond
		case "s", "sec", "second", "seconds":
			unit = clock.Second
		case "m", "min", "minute", "minutes":
			unit = clock.Minute
		case "h", "hour", "hours":
			unit = clock.Hour
		case "d", "day", "days":
			unit = clock.Day
		case "w", "week", "weeks":
			unit = clock.Week
		default:
			return 0, errf(t.pos, "unknown duration unit %q", u)
		}
	}
	return n * unit, nil
}

func (p *parser) insertStmt() (Stmt, error) {
	p.next() // INSERT
	if _, err := p.expect(tokKeyword, "INTO"); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	st := &InsertStmt{Table: name}
	if p.accept(tokSymbol, "(") {
		for {
			col, err := p.ident()
			if err != nil {
				return nil, err
			}
			st.Columns = append(st.Columns, col)
			if !p.accept(tokSymbol, ",") {
				break
			}
		}
		if _, err := p.expect(tokSymbol, ")"); err != nil {
			return nil, err
		}
	}
	if _, err := p.expect(tokKeyword, "VALUES"); err != nil {
		return nil, err
	}
	for {
		if _, err := p.expect(tokSymbol, "("); err != nil {
			return nil, err
		}
		var row []Expr
		for {
			v, err := p.operand()
			if err != nil {
				return nil, err
			}
			row = append(row, v)
			if !p.accept(tokSymbol, ",") {
				break
			}
		}
		if _, err := p.expect(tokSymbol, ")"); err != nil {
			return nil, err
		}
		st.Rows = append(st.Rows, row)
		if !p.accept(tokSymbol, ",") {
			break
		}
	}
	return st, nil
}

func (p *parser) createStmt() (Stmt, error) {
	p.next() // CREATE
	if _, err := p.expect(tokKeyword, "TABLE"); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokSymbol, "("); err != nil {
		return nil, err
	}
	st := &CreateTableStmt{Table: name}
	for {
		if p.accept(tokKeyword, "PRIMARY") {
			if _, err := p.expect(tokKeyword, "KEY"); err != nil {
				return nil, err
			}
			if _, err := p.expect(tokSymbol, "("); err != nil {
				return nil, err
			}
			for {
				col, err := p.ident()
				if err != nil {
					return nil, err
				}
				st.Key = append(st.Key, col)
				if !p.accept(tokSymbol, ",") {
					break
				}
			}
			if _, err := p.expect(tokSymbol, ")"); err != nil {
				return nil, err
			}
		} else {
			col, err := p.columnDef()
			if err != nil {
				return nil, err
			}
			st.Columns = append(st.Columns, col)
		}
		if !p.accept(tokSymbol, ",") {
			break
		}
	}
	if _, err := p.expect(tokSymbol, ")"); err != nil {
		return nil, err
	}
	if p.accept(tokKeyword, "TTL") {
		d, err := p.duration()
		if err != nil {
			return nil, err
		}
		st.TTL = d
	}
	return st, nil
}

func (p *parser) columnDef() (schema.Column, error) {
	name, err := p.ident()
	if err != nil {
		return schema.Column{}, err
	}
	tt, err := p.expect(tokIdent, "")
	if err != nil {
		return schema.Column{}, err
	}
	typ, err := ltval.ParseType(strings.ToLower(tt.text))
	if err != nil {
		return schema.Column{}, errf(tt.pos, "unknown type %q", tt.text)
	}
	col := schema.Column{Name: name, Type: typ}
	if p.accept(tokKeyword, "DEFAULT") {
		v, err := p.operand()
		if err != nil {
			return schema.Column{}, err
		}
		lit, ok := v.(*Lit)
		if !ok {
			return schema.Column{}, errf(tt.pos, "DEFAULT must be a literal")
		}
		d, err := litToValue(lit, typ)
		if err != nil {
			return schema.Column{}, err
		}
		col.Default = d
	}
	return col, nil
}

func (p *parser) dropStmt() (Stmt, error) {
	p.next() // DROP
	if _, err := p.expect(tokKeyword, "TABLE"); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	return &DropTableStmt{Table: name}, nil
}

func (p *parser) alterStmt() (Stmt, error) {
	p.next() // ALTER
	if _, err := p.expect(tokKeyword, "TABLE"); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	st := &AlterStmt{Table: name}
	t := p.cur()
	switch {
	case p.accept(tokKeyword, "ADD"):
		p.accept(tokKeyword, "COLUMN")
		col, err := p.columnDef()
		if err != nil {
			return nil, err
		}
		st.AddColumn = &col
	case p.accept(tokKeyword, "WIDEN"):
		p.accept(tokKeyword, "COLUMN")
		col, err := p.ident()
		if err != nil {
			return nil, err
		}
		st.WidenColumn = col
	case p.accept(tokKeyword, "SET"):
		if _, err := p.expect(tokKeyword, "TTL"); err != nil {
			return nil, err
		}
		d, err := p.duration()
		if err != nil {
			return nil, err
		}
		st.SetTTL = &d
	default:
		return nil, errf(t.pos, "expected ADD, WIDEN, or SET after ALTER TABLE")
	}
	return st, nil
}
