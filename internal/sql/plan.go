package sql

import (
	"fmt"

	"littletable/internal/core"
	"littletable/internal/ltval"
	"littletable/internal/schema"
)

// The planner translates a WHERE clause into the engine's native query
// shape — a two-dimensional bounding box of a primary-key range and a
// timestamp range (§3.1) — plus a residual filter for whatever the box
// cannot express. This is the job the paper's SQLite adaptor does when it
// pushes virtual-table constraints down to the server.

// plan is a compiled SELECT lower half: the box plus residual predicate.
type plan struct {
	q        core.Query
	residual Expr // may be nil
	// exact reports that the box alone expresses the WHERE clause — every
	// conjunct was absorbed into key or timestamp bounds — so the residual
	// is redundant. DELETE uses this to ship box-only deletions over the
	// wire and SELECT to skip per-row re-evaluation.
	exact bool
}

// planWhere compiles where into a box over sc. now resolves NOW().
func planWhere(sc *schema.Schema, where Expr, now int64) (plan, error) {
	pl := plan{q: core.NewQuery()}
	if where == nil {
		return pl, nil
	}
	pl.residual = where
	conjuncts := flattenAnd(where)
	if conjuncts == nil {
		// Top-level OR or NOT: no pushdown, full scan + filter.
		return pl, nil
	}

	// Gather per-key-column constraints.
	type bound struct {
		val ltval.Value
		inc bool
		set bool
	}
	type colBounds struct {
		eq     *ltval.Value
		lo, hi bound
	}
	kb := make([]colBounds, sc.KeyLen())
	keyPos := make(map[string]int, sc.KeyLen())
	for i, k := range sc.Key {
		keyPos[sc.Columns[k].Name] = i
	}
	tsKeyIdx := sc.KeyLen() - 1

	constrained := make([]bool, sc.KeyLen())
	allAbsorbable := true // every conjunct is a key-column constraint
	apply := func(ki int, op string, v ltval.Value) {
		cb := &kb[ki]
		switch op {
		case "=":
			if cb.eq != nil && !cb.eq.Equal(v) {
				// Conflicting equalities: the box keeps only one, so the
				// residual must stay authoritative.
				allAbsorbable = false
			}
			cb.eq = &v
		case ">":
			if !cb.lo.set || v.Compare(cb.lo.val) >= 0 {
				cb.lo = bound{val: v, inc: false, set: true}
			}
		case ">=":
			if !cb.lo.set || v.Compare(cb.lo.val) > 0 {
				cb.lo = bound{val: v, inc: true, set: true}
			}
		case "<":
			if !cb.hi.set || v.Compare(cb.hi.val) <= 0 {
				cb.hi = bound{val: v, inc: false, set: true}
			}
		case "<=":
			if !cb.hi.set || v.Compare(cb.hi.val) < 0 {
				cb.hi = bound{val: v, inc: true, set: true}
			}
		}
	}

	for _, c := range conjuncts {
		col, op, lit, ok, err := asColConstraint(sc, c, now)
		if err != nil {
			return plan{}, err
		}
		if !ok {
			allAbsorbable = false
			continue // stays in the residual
		}
		ki, isKey := keyPos[col]
		if !isKey {
			allAbsorbable = false
			continue
		}
		apply(ki, op, lit)
		constrained[ki] = true
	}

	// Timestamp bounds: the final key column doubles as the time dimension.
	if cb := kb[tsKeyIdx]; cb.eq != nil {
		pl.q.MinTs, pl.q.MaxTs = cb.eq.Int, cb.eq.Int
		if cb.lo.set || cb.hi.set {
			// eq ∧ range on ts: the box keeps only the equality.
			allAbsorbable = false
		}
	} else {
		if cb.lo.set {
			pl.q.MinTs = cb.lo.val.Int
			if !cb.lo.inc {
				pl.q.MinTs++
			}
		}
		if cb.hi.set {
			pl.q.MaxTs = cb.hi.val.Int
			if !cb.hi.inc {
				pl.q.MaxTs--
			}
		}
	}

	// Key bounds: equalities form the shared prefix; the first non-equality
	// key column may contribute a range, after which planning stops (the
	// box is a prefix rectangle, Figure 1).
	var lower, upper []ltval.Value
	lowerInc, upperInc := true, true
	encoded := make([]bool, sc.KeyLen())
	encoded[tsKeyIdx] = true // ts constraints always land in MinTs/MaxTs
	for i := 0; i < sc.KeyLen(); i++ {
		cb := kb[i]
		if cb.eq != nil {
			lower = append(lower, *cb.eq)
			upper = append(upper, *cb.eq)
			encoded[i] = true
			// An eq plus a redundant range on the same column: the range
			// did not make it into the box.
			if cb.lo.set || cb.hi.set {
				allAbsorbable = false
			}
			continue
		}
		if cb.lo.set {
			lower = append(lower, cb.lo.val)
			lowerInc = cb.lo.inc
			encoded[i] = true
		}
		if cb.hi.set {
			upper = append(upper, cb.hi.val)
			upperInc = cb.hi.inc
			encoded[i] = true
		}
		break
	}
	pl.exact = allAbsorbable
	for i, c := range constrained {
		if c && !encoded[i] {
			pl.exact = false
		}
	}
	if len(lower) > 0 {
		pl.q.Lower = lower
		pl.q.LowerInc = lowerInc
	}
	if len(upper) > 0 {
		pl.q.Upper = upper
		pl.q.UpperInc = upperInc
	}
	if pl.q.MinTs > pl.q.MaxTs {
		// Contradictory time bounds: empty result. Signal with an
		// impossible box the engine rejects gracefully; normalize instead.
		pl.q.MinTs, pl.q.MaxTs = 1, 0
	}
	return pl, nil
}

// flattenAnd returns the AND-conjuncts of e, or nil if e contains OR/NOT at
// the top level.
func flattenAnd(e Expr) []Expr {
	switch v := e.(type) {
	case *Logic:
		if v.Op != "AND" {
			return nil
		}
		l := flattenAnd(v.Left)
		r := flattenAnd(v.Right)
		if l == nil || r == nil {
			return nil
		}
		return append(l, r...)
	case *Not:
		return nil
	case *Between:
		// col BETWEEN a AND b ⇒ two conjuncts.
		return []Expr{
			&Cmp{Op: ">=", Left: v.Col, Right: v.Lo, Pos: v.Pos},
			&Cmp{Op: "<=", Left: v.Col, Right: v.Hi, Pos: v.Pos},
		}
	default:
		return []Expr{e}
	}
}

// asColConstraint recognizes `col op literal` (either side), returning the
// column name, normalized operator, and the literal coerced to the column
// type.
func asColConstraint(sc *schema.Schema, e Expr, now int64) (col string, op string, v ltval.Value, ok bool, err error) {
	c, isCmp := e.(*Cmp)
	if !isCmp {
		return "", "", ltval.Value{}, false, nil
	}
	colRef, lit := asColAndLit(c.Left, c.Right)
	op = c.Op
	if colRef == nil {
		colRef, lit = asColAndLit(c.Right, c.Left)
		op = flipOp(op)
	}
	if colRef == nil || lit == nil || op == "!=" {
		return "", "", ltval.Value{}, false, nil
	}
	i := sc.ColumnIndex(colRef.Name)
	if i < 0 {
		return "", "", ltval.Value{}, false, errf(colRef.Pos, "unknown column %q", colRef.Name)
	}
	val, err := resolveLit(lit, sc.Columns[i].Type, now)
	if err != nil {
		return "", "", ltval.Value{}, false, err
	}
	return colRef.Name, op, val, true, nil
}

func asColAndLit(a, b Expr) (*ColRef, Expr) {
	col, ok := a.(*ColRef)
	if !ok {
		return nil, nil
	}
	switch b.(type) {
	case *Lit, *NowExpr:
		return col, b
	}
	return nil, nil
}

func flipOp(op string) string {
	switch op {
	case "<":
		return ">"
	case "<=":
		return ">="
	case ">":
		return "<"
	case ">=":
		return "<="
	}
	return op
}

// resolveLit coerces a literal or NOW() expression to a column type.
func resolveLit(e Expr, t ltval.Type, now int64) (ltval.Value, error) {
	switch v := e.(type) {
	case *Lit:
		return litToValue(v, t)
	case *NowExpr:
		if t != ltval.Timestamp {
			return ltval.Value{}, errf(v.Pos, "NOW() compared to non-timestamp column")
		}
		return ltval.NewTimestamp(now + v.OffsetUs), nil
	default:
		return ltval.Value{}, fmt.Errorf("sql: not a literal")
	}
}

// evalBool evaluates a residual predicate against a row.
func evalBool(sc *schema.Schema, e Expr, row schema.Row, now int64) (bool, error) {
	switch v := e.(type) {
	case *Logic:
		l, err := evalBool(sc, v.Left, row, now)
		if err != nil {
			return false, err
		}
		if v.Op == "AND" {
			if !l {
				return false, nil
			}
			return evalBool(sc, v.Right, row, now)
		}
		if l {
			return true, nil
		}
		return evalBool(sc, v.Right, row, now)
	case *Not:
		b, err := evalBool(sc, v.E, row, now)
		return !b, err
	case *Between:
		lo := &Cmp{Op: ">=", Left: v.Col, Right: v.Lo, Pos: v.Pos}
		hi := &Cmp{Op: "<=", Left: v.Col, Right: v.Hi, Pos: v.Pos}
		b, err := evalBool(sc, lo, row, now)
		if err != nil || !b {
			return false, err
		}
		return evalBool(sc, hi, row, now)
	case *Cmp:
		return evalCmp(sc, v, row, now)
	default:
		return false, fmt.Errorf("sql: expression is not a predicate")
	}
}

func evalCmp(sc *schema.Schema, c *Cmp, row schema.Row, now int64) (bool, error) {
	lv, err := evalOperand(sc, c.Left, row, now, operandTypeHint(sc, c.Right))
	if err != nil {
		return false, err
	}
	rv, err := evalOperand(sc, c.Right, row, now, lv.Type)
	if err != nil {
		return false, err
	}
	// Numeric cross-type comparisons: int vs double compares numerically.
	cmp := compareValues(lv, rv)
	switch c.Op {
	case "=":
		return cmp == 0, nil
	case "!=":
		return cmp != 0, nil
	case "<":
		return cmp < 0, nil
	case "<=":
		return cmp <= 0, nil
	case ">":
		return cmp > 0, nil
	case ">=":
		return cmp >= 0, nil
	}
	return false, fmt.Errorf("sql: bad operator %q", c.Op)
}

func operandTypeHint(sc *schema.Schema, e Expr) ltval.Type {
	if col, ok := e.(*ColRef); ok {
		if i := sc.ColumnIndex(col.Name); i >= 0 {
			return sc.Columns[i].Type
		}
	}
	if _, ok := e.(*NowExpr); ok {
		return ltval.Timestamp
	}
	return ltval.Invalid
}

func evalOperand(sc *schema.Schema, e Expr, row schema.Row, now int64, hint ltval.Type) (ltval.Value, error) {
	switch v := e.(type) {
	case *ColRef:
		i := sc.ColumnIndex(v.Name)
		if i < 0 {
			return ltval.Value{}, errf(v.Pos, "unknown column %q", v.Name)
		}
		return row[i], nil
	case *Lit:
		t := hint
		if t == ltval.Invalid {
			// Untyped context: infer from the literal itself.
			switch {
			case v.IsNumber && v.IsFloat:
				t = ltval.Double
			case v.IsNumber:
				t = ltval.Int64
			case v.Str != nil:
				t = ltval.String
			default:
				t = ltval.Blob
			}
		}
		return litToValue(v, t)
	case *NowExpr:
		return ltval.NewTimestamp(now + v.OffsetUs), nil
	default:
		return ltval.Value{}, fmt.Errorf("sql: unsupported operand")
	}
}

// compareValues orders possibly-mixed numeric types.
func compareValues(a, b ltval.Value) int {
	an, aIsNum := asFloat(a)
	bn, bIsNum := asFloat(b)
	if aIsNum && bIsNum && a.Type != b.Type {
		switch {
		case an < bn:
			return -1
		case an > bn:
			return 1
		default:
			return 0
		}
	}
	return a.Compare(b)
}

func asFloat(v ltval.Value) (float64, bool) {
	switch v.Type {
	case ltval.Int32, ltval.Int64, ltval.Timestamp:
		return float64(v.Int), true
	case ltval.Double:
		return v.Float, true
	}
	return 0, false
}
