package sql

import (
	"fmt"
	"strings"
	"testing"

	"littletable/internal/clock"
	"littletable/internal/core"
	"littletable/internal/ltval"
	"littletable/internal/server"
)

// newEngine builds an in-process SQL engine over a fresh server with a
// fake clock pinned at a known instant.
func newEngine(t testing.TB) (*Engine, *clock.Fake) {
	t.Helper()
	clk := clock.NewFake(1_782_018_420 * clock.Second)
	s, err := server.New(server.Options{
		Root: t.TempDir(),
		Core: core.Options{Clock: clk},
		Logf: func(string, ...interface{}) {},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return NewEngine(&ServerBackend{S: s}), clk
}

func mustExec(t testing.TB, e *Engine, q string) *Result {
	t.Helper()
	res, err := e.Exec(q)
	if err != nil {
		t.Fatalf("%s: %v", q, err)
	}
	return res
}

func setupUsage(t testing.TB, e *Engine, clk *clock.Fake) {
	t.Helper()
	mustExec(t, e, `CREATE TABLE usage (
		network int64, device int64, ts timestamp, bytes int64, rate double,
		PRIMARY KEY (network, device, ts)) TTL 365 d`)
	now := clk.Now()
	// 2 networks × 3 devices × 5 minutes of samples.
	for n := int64(1); n <= 2; n++ {
		for d := int64(1); d <= 3; d++ {
			for m := int64(0); m < 5; m++ {
				ts := now - m*clock.Minute
				mustExec(t, e, sprintf(
					"INSERT INTO usage VALUES (%d, %d, %d, %d, %g)",
					n, d, ts, 1000*d+m, float64(d)+float64(m)/10))
			}
		}
	}
}

func sprintf(format string, args ...interface{}) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, format, args...)
	return sb.String()
}

func TestCreateInsertSelect(t *testing.T) {
	e, clk := newEngine(t)
	setupUsage(t, e, clk)
	res := mustExec(t, e, "SELECT * FROM usage")
	if len(res.Rows) != 30 {
		t.Fatalf("SELECT * returned %d rows", len(res.Rows))
	}
	if len(res.Columns) != 5 || res.Columns[0] != "network" {
		t.Fatalf("columns: %v", res.Columns)
	}
	// Ordered by primary key.
	for i := 1; i < len(res.Rows); i++ {
		a, b := res.Rows[i-1], res.Rows[i]
		if a[0].Int > b[0].Int {
			t.Fatal("rows not ordered by network")
		}
	}
}

func TestSelectBoundingBox(t *testing.T) {
	e, clk := newEngine(t)
	setupUsage(t, e, clk)
	// Rectangle: network 1, device 2, last 2 minutes.
	res := mustExec(t, e,
		"SELECT bytes FROM usage WHERE network = 1 AND device = 2 AND ts >= NOW() - 2 m")
	if len(res.Rows) != 3 { // minutes 0, 1, 2
		t.Fatalf("box query returned %d rows", len(res.Rows))
	}
	for _, r := range res.Rows {
		if r[0].Int < 2000 || r[0].Int > 2004 {
			t.Fatalf("wrong row: %v", r)
		}
	}
}

func TestSelectProjectionAndAlias(t *testing.T) {
	e, clk := newEngine(t)
	setupUsage(t, e, clk)
	res := mustExec(t, e, "SELECT device AS d, rate FROM usage WHERE network = 2 AND device = 3 LIMIT 2")
	if len(res.Rows) != 2 || res.Columns[0] != "d" || res.Columns[1] != "rate" {
		t.Fatalf("%v %v", res.Columns, res.Rows)
	}
	if res.Rows[0][0].Int != 3 {
		t.Fatal("projection wrong")
	}
}

func TestSelectAggregates(t *testing.T) {
	e, clk := newEngine(t)
	setupUsage(t, e, clk)
	res := mustExec(t, e, "SELECT COUNT(*), SUM(bytes), MIN(bytes), MAX(bytes), AVG(rate) FROM usage WHERE network = 1")
	if len(res.Rows) != 1 {
		t.Fatalf("aggregate rows: %d", len(res.Rows))
	}
	r := res.Rows[0]
	if r[0].Int != 15 {
		t.Errorf("COUNT = %d", r[0].Int)
	}
	// SUM(bytes) over d=1..3, m=0..4: sum(1000d+m) = 15*?? compute:
	// d=1: 1000*5+0+1+2+3+4=5010; d=2: 10010; d=3: 15010 → 30030.
	if r[1].Int != 30030 {
		t.Errorf("SUM = %d", r[1].Int)
	}
	if r[2].Int != 1000 || r[3].Int != 3004 {
		t.Errorf("MIN/MAX = %d/%d", r[2].Int, r[3].Int)
	}
	if r[4].Type != ltval.Double {
		t.Errorf("AVG type = %v", r[4].Type)
	}
}

func TestGroupBy(t *testing.T) {
	e, clk := newEngine(t)
	setupUsage(t, e, clk)
	// The paper's example: sum of bytes per device in a network (§3.1).
	res := mustExec(t, e,
		"SELECT device, SUM(bytes) FROM usage WHERE network = 1 GROUP BY device")
	if len(res.Rows) != 3 {
		t.Fatalf("groups: %d", len(res.Rows))
	}
	// Streaming aggregation: groups arrive in key order.
	want := []int64{5010, 10010, 15010}
	for i, r := range res.Rows {
		if r[0].Int != int64(i+1) || r[1].Int != want[i] {
			t.Errorf("group %d: %v", i, r)
		}
	}
}

func TestGroupByNonKeyColumn(t *testing.T) {
	e, clk := newEngine(t)
	setupUsage(t, e, clk)
	// Hash aggregation path: grouping by a value column.
	res := mustExec(t, e, "SELECT bytes, COUNT(*) FROM usage GROUP BY bytes LIMIT 100")
	if len(res.Rows) != 15 { // 15 distinct byte counts (shared by the 2 networks)
		t.Fatalf("groups: %d", len(res.Rows))
	}
	for _, r := range res.Rows {
		if r[1].Int != 2 {
			t.Errorf("each bytes value appears twice: %v", r)
		}
	}
}

func TestOrderByAndLimit(t *testing.T) {
	e, clk := newEngine(t)
	setupUsage(t, e, clk)
	// Native descending scan on key prefix.
	res := mustExec(t, e, "SELECT network, device FROM usage ORDER BY network DESC LIMIT 5")
	if len(res.Rows) != 5 || res.Rows[0][0].Int != 2 {
		t.Fatalf("ORDER BY DESC: %v", res.Rows)
	}
	// Sort on a non-key column.
	res = mustExec(t, e, "SELECT device, rate FROM usage WHERE network = 1 ORDER BY rate DESC LIMIT 1")
	if len(res.Rows) != 1 || res.Rows[0][0].Int != 3 {
		t.Fatalf("ORDER BY rate: %v", res.Rows)
	}
}

func TestWhereOrAndNot(t *testing.T) {
	e, clk := newEngine(t)
	setupUsage(t, e, clk)
	res := mustExec(t, e, "SELECT COUNT(*) FROM usage WHERE device = 1 OR device = 3")
	if res.Rows[0][0].Int != 20 {
		t.Fatalf("OR count = %d", res.Rows[0][0].Int)
	}
	res = mustExec(t, e, "SELECT COUNT(*) FROM usage WHERE NOT device = 2")
	if res.Rows[0][0].Int != 20 {
		t.Fatalf("NOT count = %d", res.Rows[0][0].Int)
	}
	res = mustExec(t, e, "SELECT COUNT(*) FROM usage WHERE network = 1 AND (device = 1 OR rate > 2.5)")
	if res.Rows[0][0].Int == 0 {
		t.Fatal("mixed AND/OR returned nothing")
	}
}

func TestBetween(t *testing.T) {
	e, clk := newEngine(t)
	setupUsage(t, e, clk)
	res := mustExec(t, e, "SELECT COUNT(*) FROM usage WHERE device BETWEEN 2 AND 3")
	if res.Rows[0][0].Int != 20 {
		t.Fatalf("BETWEEN count = %d", res.Rows[0][0].Int)
	}
}

func TestNotEqualResidual(t *testing.T) {
	e, clk := newEngine(t)
	setupUsage(t, e, clk)
	res := mustExec(t, e, "SELECT COUNT(*) FROM usage WHERE network = 1 AND bytes != 1000")
	if res.Rows[0][0].Int != 14 {
		t.Fatalf("!= count = %d", res.Rows[0][0].Int)
	}
}

func TestEmptyTimeBox(t *testing.T) {
	e, clk := newEngine(t)
	setupUsage(t, e, clk)
	res := mustExec(t, e, "SELECT * FROM usage WHERE ts > NOW() AND ts < NOW() - 1 h")
	if len(res.Rows) != 0 {
		t.Fatalf("contradictory bounds returned %d rows", len(res.Rows))
	}
}

func TestShowAndDescribe(t *testing.T) {
	e, clk := newEngine(t)
	setupUsage(t, e, clk)
	res := mustExec(t, e, "SHOW TABLES")
	if len(res.Rows) != 1 || string(res.Rows[0][0].Bytes) != "usage" {
		t.Fatalf("SHOW TABLES: %v", res.Rows)
	}
	res = mustExec(t, e, "DESCRIBE usage")
	if len(res.Rows) != 5 {
		t.Fatalf("DESCRIBE rows: %d", len(res.Rows))
	}
	// ts is key position 3.
	if string(res.Rows[2][0].Bytes) != "ts" || string(res.Rows[2][2].Bytes) != "3" {
		t.Fatalf("DESCRIBE ts row: %v", res.Rows[2])
	}
}

func TestAlterStatements(t *testing.T) {
	e, clk := newEngine(t)
	setupUsage(t, e, clk)
	mustExec(t, e, "ALTER TABLE usage ADD COLUMN tag string DEFAULT 'none'")
	res := mustExec(t, e, "SELECT tag FROM usage LIMIT 1")
	if string(res.Rows[0][0].Bytes) != "none" {
		t.Fatalf("added column default: %v", res.Rows[0])
	}
	mustExec(t, e, "ALTER TABLE usage SET TTL 30 d")
	mustExec(t, e, "CREATE TABLE c32 (k int64, ts timestamp, v int32, PRIMARY KEY (k, ts))")
	mustExec(t, e, "ALTER TABLE c32 WIDEN COLUMN v")
	mustExec(t, e, "INSERT INTO c32 VALUES (1, 1, 5000000000)")
}

func TestDropTable(t *testing.T) {
	e, clk := newEngine(t)
	setupUsage(t, e, clk)
	mustExec(t, e, "DROP TABLE usage")
	if _, err := e.Exec("SELECT * FROM usage"); err == nil {
		t.Fatal("query after drop succeeded")
	}
	res := mustExec(t, e, "SHOW TABLES")
	if len(res.Rows) != 0 {
		t.Fatal("table still listed after drop")
	}
}

func TestSelectLatest(t *testing.T) {
	e, clk := newEngine(t)
	setupUsage(t, e, clk)
	res := mustExec(t, e, "SELECT LATEST FROM usage WHERE network = 1 AND device = 2")
	if len(res.Rows) != 1 {
		t.Fatalf("LATEST rows: %d", len(res.Rows))
	}
	if res.Rows[0][2].Int != clk.Now() {
		t.Fatalf("LATEST ts = %d, want %d", res.Rows[0][2].Int, clk.Now())
	}
	res = mustExec(t, e, "SELECT LATEST FROM usage WHERE network = 42 AND device = 1")
	if len(res.Rows) != 0 {
		t.Fatal("LATEST for missing key returned rows")
	}
}

func TestFlushStatement(t *testing.T) {
	e, clk := newEngine(t)
	setupUsage(t, e, clk)
	mustExec(t, e, "FLUSH TABLE usage")
	res := mustExec(t, e, "SELECT COUNT(*) FROM usage")
	if res.Rows[0][0].Int != 30 {
		t.Fatal("rows lost by FLUSH TABLE")
	}
}

func TestInsertWithColumnsAndDefaults(t *testing.T) {
	e, _ := newEngine(t)
	mustExec(t, e, `CREATE TABLE ev (net int64, ts timestamp, msg string DEFAULT 'empty',
		sev int64 DEFAULT -1, PRIMARY KEY (net, ts))`)
	mustExec(t, e, "INSERT INTO ev (net, ts) VALUES (1, 100)")
	res := mustExec(t, e, "SELECT msg, sev FROM ev")
	if string(res.Rows[0][0].Bytes) != "empty" || res.Rows[0][1].Int != -1 {
		t.Fatalf("defaults: %v", res.Rows[0])
	}
	// Multi-row VALUES.
	mustExec(t, e, "INSERT INTO ev (net, ts, msg) VALUES (1, 200, 'a'), (1, 300, 'b')")
	res = mustExec(t, e, "SELECT COUNT(*) FROM ev")
	if res.Rows[0][0].Int != 3 {
		t.Fatal("multi-row insert lost rows")
	}
}

func TestInsertOmittedTimestamp(t *testing.T) {
	e, clk := newEngine(t)
	mustExec(t, e, "CREATE TABLE ev (net int64, ts timestamp, PRIMARY KEY (net, ts))")
	mustExec(t, e, "INSERT INTO ev (net) VALUES (7)")
	res := mustExec(t, e, "SELECT ts FROM ev")
	if res.Rows[0][0].Int != clk.Now() {
		t.Fatalf("omitted ts = %d, want now", res.Rows[0][0].Int)
	}
}

func TestInsertDuplicateKeyError(t *testing.T) {
	e, _ := newEngine(t)
	mustExec(t, e, "CREATE TABLE ev (net int64, ts timestamp, PRIMARY KEY (net, ts))")
	mustExec(t, e, "INSERT INTO ev VALUES (1, 5)")
	if _, err := e.Exec("INSERT INTO ev VALUES (1, 5)"); err == nil {
		t.Fatal("duplicate insert succeeded")
	}
}

func TestStringAndBlobLiterals(t *testing.T) {
	e, _ := newEngine(t)
	mustExec(t, e, `CREATE TABLE logs (host string, ts timestamp, data blob,
		PRIMARY KEY (host, ts))`)
	mustExec(t, e, `INSERT INTO logs VALUES ('it''s-a-host', 1, x'deadbeef')`)
	res := mustExec(t, e, `SELECT * FROM logs WHERE host = 'it''s-a-host'`)
	if len(res.Rows) != 1 {
		t.Fatal("string-keyed lookup failed")
	}
	if res.Rows[0][2].Bytes[0] != 0xde {
		t.Fatalf("blob: %x", res.Rows[0][2].Bytes)
	}
}

func TestParseErrors(t *testing.T) {
	e, _ := newEngine(t)
	bad := []string{
		"",
		"SELEC * FROM x",
		"SELECT FROM x",
		"SELECT * FROM",
		"SELECT * FROM x WHERE",
		"INSERT INTO x",
		"CREATE TABLE x ()",
		"CREATE TABLE x (a int64)", // no key
		"CREATE TABLE x (a int64, PRIMARY KEY (a))", // last key not ts
		"SELECT * FROM x WHERE a &&& 1",
		"SELECT SUM(*) FROM x",
		"SELECT * FROM x LIMIT -1",
		"SELECT * FROM x; SELECT * FROM y",
		"DROP x",
	}
	for _, q := range bad {
		if _, err := e.Exec(q); err == nil {
			t.Errorf("accepted: %q", q)
		}
	}
}

func TestUnknownColumnErrors(t *testing.T) {
	e, clk := newEngine(t)
	setupUsage(t, e, clk)
	for _, q := range []string{
		"SELECT nope FROM usage",
		"SELECT * FROM usage WHERE nope = 1",
		"SELECT device, SUM(nope) FROM usage GROUP BY device",
		"SELECT device FROM usage GROUP BY nope",
		"SELECT rate FROM usage GROUP BY device", // rate not in group
		"INSERT INTO usage (nope) VALUES (1)",
	} {
		if _, err := e.Exec(q); err == nil {
			t.Errorf("accepted: %q", q)
		}
	}
}

func TestComments(t *testing.T) {
	e, clk := newEngine(t)
	setupUsage(t, e, clk)
	res := mustExec(t, e, "SELECT COUNT(*) FROM usage -- trailing comment\n")
	if res.Rows[0][0].Int != 30 {
		t.Fatal("comment handling broke the query")
	}
}

func TestTTLFromSQL(t *testing.T) {
	e, clk := newEngine(t)
	mustExec(t, e, "CREATE TABLE short (k int64, ts timestamp, PRIMARY KEY (k, ts)) TTL 1 h")
	now := clk.Now()
	mustExec(t, e, sprintf("INSERT INTO short VALUES (1, %d)", now-2*clock.Hour))
	mustExec(t, e, sprintf("INSERT INTO short VALUES (2, %d)", now))
	res := mustExec(t, e, "SELECT COUNT(*) FROM short")
	if res.Rows[0][0].Int != 1 {
		t.Fatalf("TTL filter via SQL: %d rows", res.Rows[0][0].Int)
	}
}
