package tablet

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"littletable/internal/block"
	"littletable/internal/schema"
)

// The corruption battery: sweep single-bit flips and truncations across a
// whole tablet file — records, footer, trailer, everything — and hold the
// reader to its §3 robustness contract: a damaged tablet may fail to open
// or fail mid-scan with ErrCorrupt, but it must never panic and never
// serve rows that differ from what was written. Record CRCs cover block
// and footer payloads, the columnar image carries its own checksum, and
// the trailer magic pins the file's tail, so every flip lands under some
// detector; this test is what keeps that coverage honest as the format
// evolves.

// corruptionSeed writes a small multi-block tablet and returns its bytes
// plus the rows it holds.
func corruptionSeed(t *testing.T, mode block.Mode) ([]byte, []schema.Row) {
	t.Helper()
	dir := t.TempDir()
	path := filepath.Join(dir, "seed.tab")
	w, err := Create(path, testSchema(t), WriterOptions{BlockSize: 256, Encoding: mode})
	if err != nil {
		t.Fatal(err)
	}
	rows := seqRows(48)
	for _, r := range rows {
		if err := w.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := w.Close(); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return raw, rows
}

// scanAll opens the image and scans it to the end, returning the rows or
// the first error. Panics propagate and fail the test — that is the point.
func scanAll(raw []byte) ([]schema.Row, error) {
	tab, err := OpenFile(memFile{bytes.NewReader(raw)}, int64(len(raw)))
	if err != nil {
		return nil, err
	}
	defer tab.Close()
	var out []schema.Row
	c := tab.Cursor(true)
	for c.Next() {
		out = append(out, append(schema.Row(nil), c.Row()...))
	}
	if err := c.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

func sameTabletRows(got, want []schema.Row) bool {
	if len(got) != len(want) {
		return false
	}
	for i := range want {
		if len(got[i]) != len(want[i]) {
			return false
		}
		for j := range want[i] {
			if !got[i][j].Equal(want[i][j]) {
				return false
			}
		}
	}
	return true
}

func TestTabletBitFlipSweep(t *testing.T) {
	for _, tc := range []struct {
		name string
		mode block.Mode
	}{
		{"auto", block.ModeAuto},
		{"legacy", block.ModeLegacy},
	} {
		t.Run(tc.name, func(t *testing.T) {
			raw, want := corruptionSeed(t, tc.mode)
			step := 1
			if testing.Short() {
				step = 11
			}
			mut := make([]byte, len(raw))
			for bit := 0; bit < len(raw)*8; bit += step {
				copy(mut, raw)
				mut[bit/8] ^= 1 << (bit % 8)
				got, err := scanAll(mut)
				if err != nil {
					continue // detected: the only other acceptable outcome
				}
				if !sameTabletRows(got, want) {
					t.Fatalf("%s: bit flip %d (byte %d of %d) served wrong rows",
						tc.name, bit, bit/8, len(raw))
				}
			}
		})
	}
}

func TestTabletTruncationSweep(t *testing.T) {
	for _, tc := range []struct {
		name string
		mode block.Mode
	}{
		{"auto", block.ModeAuto},
		{"legacy", block.ModeLegacy},
	} {
		t.Run(tc.name, func(t *testing.T) {
			raw, want := corruptionSeed(t, tc.mode)
			step := 1
			if testing.Short() {
				step = 7
			}
			for n := 0; n < len(raw); n += step {
				got, err := scanAll(raw[:n])
				if err != nil {
					continue
				}
				// A strict prefix that still opens and scans clean must be
				// impossible: the trailer magic lives in the last 16 bytes.
				if !sameTabletRows(got, want) {
					t.Fatalf("%s: truncation to %d of %d served wrong rows", tc.name, n, len(raw))
				}
				t.Fatalf("%s: truncation to %d of %d opened and scanned clean", tc.name, n, len(raw))
			}
		})
	}
}

// TestTabletBitFlipEncByte targets the one byte of new v2 footer surface
// the sweep above can only hit probabilistically once per run: the
// per-block encoding tag. The footer record's CRC must reject a flipped
// tag before the reader ever dispatches on it.
func TestTabletBitFlipEncByte(t *testing.T) {
	raw, _ := corruptionSeed(t, block.ModeAuto)
	tab, err := OpenFile(memFile{bytes.NewReader(raw)}, int64(len(raw)))
	if err != nil {
		t.Fatal(err)
	}
	if v := tab.FormatVersion(); v != formatVersion {
		t.Fatalf("seed tablet is footer version %d, want %d", v, formatVersion)
	}
	if len(tab.ft.blocks) < 2 {
		t.Fatalf("seed tablet has %d blocks, want multi-block", len(tab.ft.blocks))
	}
	tab.Close()
	// Decoding any block under the wrong encoding tag must fail loudly:
	// the columnar image's version byte and checksum reject legacy bytes,
	// and legacy parsing rejects columnar images.
	for _, enc := range []block.Encoding{block.EncLegacy, block.EncColumnar} {
		img, gotEnc := func() ([]byte, block.Encoding) {
			w := block.NewWriterMode(testSchema(t), block.ModeAuto)
			for _, r := range seqRows(64) {
				w.Append(r)
			}
			return w.Finish()
		}()
		if gotEnc == enc {
			continue
		}
		if _, err := block.Decode(testSchema(t), enc, img); err == nil {
			t.Fatalf("decoding %v image under tag %v succeeded", gotEnc, enc)
		}
	}
}
