package tablet

import (
	"littletable/internal/block"
	"littletable/internal/ltval"
	"littletable/internal/schema"
)

// Cursor iterates a tablet's rows in key order. It decodes one block at a
// time; Row is valid until the next call to Next. Cursors are not safe for
// concurrent use, but many cursors may read one Tablet concurrently.
type Cursor struct {
	t      *Tablet
	asc    bool
	blkIdx int
	rowIdx int
	blk    *block.Block
	row    schema.Row
	err    error
	done   bool

	// BlocksRead counts block loads, for scan-efficiency accounting
	// (Figure 9) and the disk-model benches.
	BlocksRead int
}

// Cursor returns an iterator over the entire tablet.
func (t *Tablet) Cursor(asc bool) *Cursor {
	c := &Cursor{t: t, asc: asc}
	if asc {
		c.blkIdx, c.rowIdx = 0, 0
	} else {
		c.blkIdx = len(t.ft.blocks) - 1
		c.rowIdx = -2 // resolved to last row of the block on first load
	}
	if len(t.ft.blocks) == 0 {
		c.done = true
	}
	return c
}

// Seek returns a cursor positioned so that the first Next yields:
//
//   - ascending: the first row with key >= probe (prefix semantics);
//   - descending: the last row with key <= probe (rows matching a short
//     probe as a prefix count as equal, so descending lands on the last
//     row of the equal range).
func (t *Tablet) Seek(probe []ltval.Value, asc bool) (*Cursor, error) {
	c := &Cursor{t: t, asc: asc}
	if len(t.ft.blocks) == 0 {
		c.done = true
		return c, nil
	}
	if asc {
		bi, err := t.searchBlocks(probe)
		if err != nil {
			return nil, err
		}
		if bi == len(t.ft.blocks) {
			c.done = true
			return c, nil
		}
		blk, err := t.loadBlock(bi)
		if err != nil {
			return nil, err
		}
		c.BlocksRead++
		ri, err := blk.Search(probe)
		if err != nil {
			return nil, err
		}
		// probe <= lastKey of this block, so ri < blk.Len() always; guard
		// anyway for corrupt indexes.
		if ri >= blk.Len() {
			bi++
			if bi == len(t.ft.blocks) {
				c.done = true
				return c, nil
			}
			blk, err = t.loadBlock(bi)
			if err != nil {
				return nil, err
			}
			c.BlocksRead++
			ri = 0
		}
		c.blk, c.blkIdx, c.rowIdx = blk, bi, ri
		return c, nil
	}
	// Descending: find the first block whose lastKey > probe; the target
	// row is there (before the upper bound) or in the previous block.
	bi, err := t.searchBlocksAfter(probe)
	if err != nil {
		return nil, err
	}
	if bi == len(t.ft.blocks) {
		// Every key <= probe: start at the very last row.
		c.blkIdx = len(t.ft.blocks) - 1
		c.rowIdx = -2
		return c, nil
	}
	blk, err := t.loadBlock(bi)
	if err != nil {
		return nil, err
	}
	c.BlocksRead++
	ri, err := blk.SearchAfter(probe)
	if err != nil {
		return nil, err
	}
	if ri == 0 {
		// All rows in this block are > probe; the answer is the previous
		// block's last row.
		if bi == 0 {
			c.done = true
			return c, nil
		}
		c.blkIdx = bi - 1
		c.rowIdx = -2
		return c, nil
	}
	c.blk, c.blkIdx, c.rowIdx = blk, bi, ri-1
	return c, nil
}

// Next advances to the next row, reporting availability. On I/O error it
// returns false and records the error in Err.
func (c *Cursor) Next() bool {
	if c.done || c.err != nil {
		return false
	}
	if c.blk == nil {
		if c.blkIdx < 0 || c.blkIdx >= len(c.t.ft.blocks) {
			c.done = true
			return false
		}
		blk, err := c.t.loadBlock(c.blkIdx)
		if err != nil {
			c.err = err
			return false
		}
		c.BlocksRead++
		c.blk = blk
		if c.rowIdx == -2 {
			c.rowIdx = blk.Len() - 1
		}
	}
	if c.rowIdx < 0 || c.rowIdx >= c.blk.Len() {
		// Step to the adjacent block.
		c.blk = nil
		if c.asc {
			c.blkIdx++
			c.rowIdx = 0
		} else {
			c.blkIdx--
			c.rowIdx = -2
		}
		return c.Next()
	}
	row, err := c.blk.Row(c.rowIdx)
	if err != nil {
		c.err = err
		return false
	}
	c.row = row
	if c.asc {
		c.rowIdx++
	} else {
		c.rowIdx--
	}
	return true
}

// Row returns the current row; valid after Next reports true and until the
// following Next call. Byte-valued cells alias the block buffer.
func (c *Cursor) Row() schema.Row { return c.row }

// Err returns the first I/O or corruption error the cursor hit.
func (c *Cursor) Err() error { return c.err }
