package tablet

import (
	"context"

	"littletable/internal/block"
	"littletable/internal/ltval"
	"littletable/internal/schema"
)

// ReadOptions tune how a cursor reads its tablet.
type ReadOptions struct {
	// Ctx cancels in-flight and future block loads, including the
	// prefetch pipeline's. nil means never cancelled.
	Ctx context.Context

	// PrefetchDepth enables a background block prefetcher reading up to
	// this many blocks ahead of the cursor. <= 0 disables prefetch and
	// the cursor loads blocks synchronously, as before.
	PrefetchDepth int
}

// Cursor iterates a tablet's rows in key order. It decodes one block at a
// time; Row is valid until the next call to Next. Cursors are not safe for
// concurrent use, but many cursors may read one Tablet concurrently. A
// cursor opened with a PrefetchDepth owns a goroutine; Close reaps it
// (Close is a no-op otherwise, and always idempotent).
type Cursor struct {
	t      *Tablet
	asc    bool
	ro     ReadOptions
	blkIdx int
	rowIdx int
	blk    *block.Block
	row    schema.Row
	err    error
	done   bool
	closed bool
	pf     *prefetcher

	// BlocksRead counts block loads, for scan-efficiency accounting
	// (Figure 9) and the disk-model benches.
	BlocksRead int

	// PrefetchHits counts blocks served by the prefetch pipeline rather
	// than a synchronous load.
	PrefetchHits int
}

// Cursor returns an iterator over the entire tablet.
func (t *Tablet) Cursor(asc bool) *Cursor {
	return t.CursorOpts(asc, ReadOptions{})
}

// CursorOpts is Cursor with explicit read options.
func (t *Tablet) CursorOpts(asc bool, ro ReadOptions) *Cursor {
	c := &Cursor{t: t, asc: asc, ro: ro}
	if asc {
		c.blkIdx, c.rowIdx = 0, 0
	} else {
		c.blkIdx = len(t.ft.blocks) - 1
		c.rowIdx = -2 // resolved to last row of the block on first load
	}
	if len(t.ft.blocks) == 0 {
		c.done = true
	}
	c.startPrefetch()
	return c
}

// Seek returns a cursor positioned so that the first Next yields:
//
//   - ascending: the first row with key >= probe (prefix semantics);
//   - descending: the last row with key <= probe (rows matching a short
//     probe as a prefix count as equal, so descending lands on the last
//     row of the equal range).
func (t *Tablet) Seek(probe []ltval.Value, asc bool) (*Cursor, error) {
	return t.SeekOpts(probe, asc, ReadOptions{})
}

// SeekOpts is Seek with explicit read options.
func (t *Tablet) SeekOpts(probe []ltval.Value, asc bool, ro ReadOptions) (*Cursor, error) {
	c, err := t.seekOpts(probe, asc, ro)
	if err != nil {
		return nil, err
	}
	c.startPrefetch()
	return c, nil
}

func (t *Tablet) seekOpts(probe []ltval.Value, asc bool, ro ReadOptions) (*Cursor, error) {
	c := &Cursor{t: t, asc: asc, ro: ro}
	if len(t.ft.blocks) == 0 {
		c.done = true
		return c, nil
	}
	if asc {
		bi, err := t.searchBlocks(probe)
		if err != nil {
			return nil, err
		}
		if bi == len(t.ft.blocks) {
			c.done = true
			return c, nil
		}
		blk, err := t.loadBlockCtx(ro.Ctx, bi)
		if err != nil {
			return nil, err
		}
		c.BlocksRead++
		ri, err := blk.Search(probe)
		if err != nil {
			return nil, err
		}
		// probe <= lastKey of this block, so ri < blk.Len() always; guard
		// anyway for corrupt indexes.
		if ri >= blk.Len() {
			bi++
			if bi == len(t.ft.blocks) {
				c.done = true
				return c, nil
			}
			blk, err = t.loadBlockCtx(ro.Ctx, bi)
			if err != nil {
				return nil, err
			}
			c.BlocksRead++
			ri = 0
		}
		c.blk, c.blkIdx, c.rowIdx = blk, bi, ri
		return c, nil
	}
	// Descending: find the first block whose lastKey > probe; the target
	// row is there (before the upper bound) or in the previous block.
	bi, err := t.searchBlocksAfter(probe)
	if err != nil {
		return nil, err
	}
	if bi == len(t.ft.blocks) {
		// Every key <= probe: start at the very last row.
		c.blkIdx = len(t.ft.blocks) - 1
		c.rowIdx = -2
		return c, nil
	}
	blk, err := t.loadBlockCtx(ro.Ctx, bi)
	if err != nil {
		return nil, err
	}
	c.BlocksRead++
	ri, err := blk.SearchAfter(probe)
	if err != nil {
		return nil, err
	}
	if ri == 0 {
		// All rows in this block are > probe; the answer is the previous
		// block's last row.
		if bi == 0 {
			c.done = true
			return c, nil
		}
		c.blkIdx = bi - 1
		c.rowIdx = -2
		return c, nil
	}
	c.blk, c.blkIdx, c.rowIdx = blk, bi, ri-1
	return c, nil
}

// startPrefetch launches the block prefetch pipeline, beginning at the
// first block this cursor has not yet loaded.
func (c *Cursor) startPrefetch() {
	if c.ro.PrefetchDepth <= 0 || c.done {
		return
	}
	start := c.blkIdx
	if c.blk != nil {
		if c.asc {
			start = c.blkIdx + 1
		} else {
			start = c.blkIdx - 1
		}
	}
	if start < 0 || start >= len(c.t.ft.blocks) {
		return
	}
	c.pf = newPrefetcher(c.t, c.ro, start, c.asc)
}

// fetchBlock returns block i, from the prefetch pipeline when one is
// running, synchronously otherwise.
func (c *Cursor) fetchBlock(i int) (*block.Block, error) {
	if c.pf != nil {
		for res := range c.pf.ch {
			if res.err != nil {
				c.pf = nil // the pipeline stopped after an error
				return nil, res.err
			}
			if res.idx == i {
				c.PrefetchHits++
				return res.blk, nil
			}
			// Blocks are produced and consumed in the same order, so a
			// mismatch cannot happen; tolerate it by skipping.
		}
		c.pf = nil // pipeline exhausted its range
	}
	return c.t.loadBlockCtx(c.ro.Ctx, i)
}

// Next advances to the next row, reporting availability. On I/O error it
// returns false and records the error in Err.
func (c *Cursor) Next() bool {
	if c.done || c.err != nil {
		return false
	}
	if c.blk == nil {
		if c.blkIdx < 0 || c.blkIdx >= len(c.t.ft.blocks) {
			c.done = true
			return false
		}
		blk, err := c.fetchBlock(c.blkIdx)
		if err != nil {
			c.err = err
			return false
		}
		c.BlocksRead++
		c.blk = blk
		if c.rowIdx == -2 {
			c.rowIdx = blk.Len() - 1
		}
	}
	if c.rowIdx < 0 || c.rowIdx >= c.blk.Len() {
		// Step to the adjacent block.
		c.blk = nil
		if c.asc {
			c.blkIdx++
			c.rowIdx = 0
		} else {
			c.blkIdx--
			c.rowIdx = -2
		}
		return c.Next()
	}
	row, err := c.blk.Row(c.rowIdx)
	if err != nil {
		c.err = err
		return false
	}
	c.row = row
	if c.asc {
		c.rowIdx++
	} else {
		c.rowIdx--
	}
	return true
}

// Row returns the current row; valid after Next reports true and until the
// following Next call. Byte-valued cells alias the block buffer.
func (c *Cursor) Row() schema.Row { return c.row }

// Err returns the first I/O or corruption error the cursor hit.
func (c *Cursor) Err() error { return c.err }

// Close stops and reaps the prefetch pipeline, if any. It is idempotent
// and must be called on cursors opened with a PrefetchDepth; it is a
// harmless no-op on plain cursors.
func (c *Cursor) Close() {
	if c.closed {
		return
	}
	c.closed = true
	c.done = true
	if c.pf != nil {
		c.pf.Close()
		c.pf = nil
	}
}

// fetchResult is one prefetched block (or the error that ended the
// pipeline).
type fetchResult struct {
	idx int
	blk *block.Block
	err error
}

// prefetcher reads blocks ahead of a cursor on its own goroutine, keeping
// up to cap(ch) parsed blocks buffered. The merge loop of a multi-tablet
// query drains one source at a time; every other source's pipeline keeps
// loading in the background, so block latency overlaps instead of
// serializing (the paper's readahead economics, §5.1.5, applied above the
// OS).
type prefetcher struct {
	ch   chan fetchResult
	stop chan struct{}
	done chan struct{}
}

func newPrefetcher(t *Tablet, ro ReadOptions, start int, asc bool) *prefetcher {
	p := &prefetcher{
		ch:   make(chan fetchResult, ro.PrefetchDepth),
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	step := 1
	if !asc {
		step = -1
	}
	go func() {
		defer close(p.done)
		defer close(p.ch)
		for i := start; i >= 0 && i < len(t.ft.blocks); i += step {
			blk, err := t.loadBlockCtx(ro.Ctx, i)
			select {
			case p.ch <- fetchResult{idx: i, blk: blk, err: err}:
				if err != nil {
					return
				}
			case <-p.stop:
				return
			}
		}
	}()
	return p
}

// Close stops the pipeline and waits for its goroutine to exit. Buffered
// results are discarded.
func (p *prefetcher) Close() {
	close(p.stop)
	// Drain so a blocked send wakes promptly; the channel closes when the
	// goroutine exits.
	for range p.ch {
	}
	<-p.done
}
