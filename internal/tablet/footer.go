package tablet

import (
	"encoding/json"
	"fmt"

	"littletable/internal/block"
	"littletable/internal/bloom"
	"littletable/internal/schema"
)

// blockMeta is one entry of the block index: the footer records the last
// key in each of the tablet's blocks (§3.2), plus enough metadata to read
// and time-filter the block without touching it.
type blockMeta struct {
	offset   int64          // file offset of the block record
	diskLen  int32          // on-disk record length including header
	rawLen   int32          // uncompressed block image length
	rowCount int32          // rows in the block
	enc      block.Encoding // block image layout (v2 footers; v1 is all-legacy)
	minTs    int64          // smallest row timestamp in the block
	maxTs    int64          // largest row timestamp in the block
	lastKey  []byte         // encoded primary key of the block's final row
}

// footer is the tablet's metadata, written compressed at the end of the
// file. On average indexes are ~0.5% of tablet size (§3.2), so the engine
// caches parsed footers "almost indefinitely".
type footer struct {
	sc       *schema.Schema
	blocks   []blockMeta
	rowCount int64
	minTs    int64
	maxTs    int64
	filter   *bloom.Filter // nil if the tablet was written without one
	// version is the footer layout this tablet was parsed from or will be
	// written with: formatVersionV1 (legacy, no per-block encoding byte) or
	// formatVersion. The legacy-encoding writer emits v1 so pre-columnar
	// readers can parse its output byte-for-byte.
	version uint32
}

func (f *footer) marshal() []byte {
	scJSON, err := json.Marshal(f.sc)
	if err != nil {
		// Schemas are validated on construction; failure here is a bug.
		panic(fmt.Sprintf("tablet: marshal schema: %v", err))
	}
	ver := f.version
	if ver == 0 {
		ver = formatVersion
	}
	var out []byte
	out = appendU32(out, ver)
	out = appendU32(out, uint32(len(scJSON)))
	out = append(out, scJSON...)
	out = appendU64(out, uint64(f.rowCount))
	out = appendU64(out, uint64(f.minTs))
	out = appendU64(out, uint64(f.maxTs))
	out = appendU32(out, uint32(len(f.blocks)))
	for i := range f.blocks {
		b := &f.blocks[i]
		out = appendU64(out, uint64(b.offset))
		out = appendU32(out, uint32(b.diskLen))
		out = appendU32(out, uint32(b.rawLen))
		out = appendU32(out, uint32(b.rowCount))
		if ver >= formatVersion {
			out = append(out, byte(b.enc))
		}
		out = appendU64(out, uint64(b.minTs))
		out = appendU64(out, uint64(b.maxTs))
		out = appendU32(out, uint32(len(b.lastKey)))
		out = append(out, b.lastKey...)
	}
	var fb []byte
	if f.filter != nil {
		fb = f.filter.Marshal()
	}
	out = appendU32(out, uint32(len(fb)))
	out = append(out, fb...)
	return out
}

func parseFooter(b []byte) (*footer, error) {
	r := reader{b: b}
	ver := r.u32()
	if ver != formatVersionV1 && ver != formatVersion {
		return nil, fmt.Errorf("%w: footer version %d", ErrCorrupt, ver)
	}
	scJSON := r.bytes(int(r.u32()))
	f := &footer{version: ver}
	if r.err == nil {
		f.sc = &schema.Schema{}
		if err := json.Unmarshal(scJSON, f.sc); err != nil {
			return nil, fmt.Errorf("%w: footer schema: %v", ErrCorrupt, err)
		}
	}
	f.rowCount = int64(r.u64())
	f.minTs = int64(r.u64())
	f.maxTs = int64(r.u64())
	n := int(r.u32())
	if r.err == nil && (n < 0 || n > len(b)) {
		return nil, fmt.Errorf("%w: footer claims %d blocks", ErrCorrupt, n)
	}
	for i := 0; i < n && r.err == nil; i++ {
		var bm blockMeta
		bm.offset = int64(r.u64())
		bm.diskLen = int32(r.u32())
		bm.rawLen = int32(r.u32())
		bm.rowCount = int32(r.u32())
		if ver >= formatVersion {
			bm.enc = block.Encoding(r.u8())
			if r.err == nil && !bm.enc.Valid() {
				return nil, fmt.Errorf("%w: block %d has unknown encoding %d", ErrCorrupt, i, bm.enc)
			}
		}
		bm.minTs = int64(r.u64())
		bm.maxTs = int64(r.u64())
		bm.lastKey = r.bytes(int(r.u32()))
		f.blocks = append(f.blocks, bm)
	}
	fb := r.bytes(int(r.u32()))
	if r.err != nil {
		return nil, fmt.Errorf("%w: footer: %v", ErrCorrupt, r.err)
	}
	if len(fb) > 0 {
		filt, err := bloom.Unmarshal(fb)
		if err != nil {
			return nil, fmt.Errorf("%w: footer bloom: %v", ErrCorrupt, err)
		}
		f.filter = filt
	}
	return f, nil
}

// reader is a tiny cursor over a byte slice with sticky errors.
type reader struct {
	b   []byte
	off int
	err error
}

func (r *reader) u8() uint8 {
	if r.err != nil {
		return 0
	}
	if r.off+1 > len(r.b) {
		r.err = fmt.Errorf("short footer at %d", r.off)
		return 0
	}
	v := r.b[r.off]
	r.off++
	return v
}

func (r *reader) u32() uint32 {
	if r.err != nil {
		return 0
	}
	if r.off+4 > len(r.b) {
		r.err = fmt.Errorf("short footer at %d", r.off)
		return 0
	}
	v := getU32(r.b[r.off:])
	r.off += 4
	return v
}

func (r *reader) u64() uint64 {
	if r.err != nil {
		return 0
	}
	if r.off+8 > len(r.b) {
		r.err = fmt.Errorf("short footer at %d", r.off)
		return 0
	}
	v := getU64(r.b[r.off:])
	r.off += 8
	return v
}

func (r *reader) bytes(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || r.off+n > len(r.b) {
		r.err = fmt.Errorf("short footer at %d (want %d bytes)", r.off, n)
		return nil
	}
	v := r.b[r.off : r.off+n]
	r.off += n
	return v
}
