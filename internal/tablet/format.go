// Package tablet implements LittleTable's on-disk tablets (§3.2, §3.5): a
// sequence of rows sorted by primary key, grouped into 64 kB blocks, with a
// compressed footer holding the schema, a block index recording the last
// key in each block, the tablet's timespan, and a Bloom filter over its
// keys. The final words of the file record the footer's location, so a
// reader reaches any row in a cold tablet with three metadata reads plus
// one block read — the four seeks behind Figure 6's 30.3 ms/tablet slope.
package tablet

import (
	"errors"
	"fmt"
	"hash/crc32"
	"io"

	"littletable/internal/lzf"
)

// Format constants.
const (
	// magic identifies a LittleTable tablet file (ASCII "LTTBL001").
	magic uint64 = 0x4c5454424c303031

	// recordHeaderSize is the per-record header: flags(1) rawLen(4)
	// diskLen(4) crc(4).
	recordHeaderSize = 13

	// trailerSize is the fixed tail: footerOffset(8) magic(8).
	trailerSize = 16

	// flagCompressed marks a record whose payload is lzf-compressed.
	flagCompressed = 1 << 0

	// formatVersion is stored in the footer for forward compatibility.
	// Version 2 records a per-block encoding byte (block.Encoding) in the
	// block index; version 1 is still parsed (all its blocks are legacy),
	// and the writer still emits it in legacy-encoding mode so old readers
	// can parse new output.
	formatVersion = 2

	// formatVersionV1 is the pre-columnar footer layout.
	formatVersionV1 = 1
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Errors reported by the tablet layer.
var (
	ErrCorrupt    = errors.New("tablet: corrupt tablet file")
	ErrBadMagic   = errors.New("tablet: not a tablet file")
	ErrOutOfOrder = errors.New("tablet: rows appended out of key order")
	ErrClosed     = errors.New("tablet: use after close")
)

// appendRecord frames payload (compressing it when that helps) and appends
// the record to dst, returning the extended slice and the on-disk record
// length.
func appendRecord(dst, payload []byte, tryCompress bool) ([]byte, int) {
	var body []byte
	var flags byte
	if tryCompress {
		comp := lzf.Compress(make([]byte, 0, lzf.MaxCompressedLen(len(payload))), payload)
		if len(comp) < len(payload) {
			body = comp
			flags = flagCompressed
		}
	}
	if body == nil {
		body = payload
	}
	crc := crc32.Checksum(body, crcTable)
	hdr := [recordHeaderSize]byte{flags}
	putU32(hdr[1:], uint32(len(payload)))
	putU32(hdr[5:], uint32(len(body)))
	putU32(hdr[9:], crc)
	dst = append(dst, hdr[:]...)
	dst = append(dst, body...)
	return dst, recordHeaderSize + len(body)
}

// readRecord reads and verifies the record at off, returning its
// decompressed payload and the on-disk record length.
func readRecord(r io.ReaderAt, off int64, fileSize int64) ([]byte, int, error) {
	var hdr [recordHeaderSize]byte
	if off < 0 || off+recordHeaderSize > fileSize {
		return nil, 0, fmt.Errorf("%w: record header at %d beyond file", ErrCorrupt, off)
	}
	if _, err := r.ReadAt(hdr[:], off); err != nil {
		return nil, 0, err
	}
	flags := hdr[0]
	rawLen := int(getU32(hdr[1:]))
	diskLen := int(getU32(hdr[5:]))
	crc := getU32(hdr[9:])
	if diskLen < 0 || rawLen < 0 || off+int64(recordHeaderSize+diskLen) > fileSize {
		return nil, 0, fmt.Errorf("%w: record at %d overruns file", ErrCorrupt, off)
	}
	// The lzf token format cannot expand a byte into more than 255 output
	// bytes, so a rawLen beyond that bound is corruption. Rejecting it here
	// — before the CRC pass would — keeps a flipped header byte from
	// sizing a multi-gigabyte zeroed buffer.
	if flags&flagCompressed != 0 && rawLen > 255*diskLen+64 {
		return nil, 0, fmt.Errorf("%w: record at %d claims %d raw bytes from %d on disk",
			ErrCorrupt, off, rawLen, diskLen)
	}
	body := make([]byte, diskLen)
	if _, err := io.ReadFull(io.NewSectionReader(r, off+recordHeaderSize, int64(diskLen)), body); err != nil {
		return nil, 0, err
	}
	if crc32.Checksum(body, crcTable) != crc {
		return nil, 0, fmt.Errorf("%w: record at %d fails checksum", ErrCorrupt, off)
	}
	if flags&flagCompressed != 0 {
		raw, err := lzf.Decompress(make([]byte, rawLen), body)
		if err != nil {
			return nil, 0, fmt.Errorf("%w: record at %d: %v", ErrCorrupt, off, err)
		}
		return raw, recordHeaderSize + diskLen, nil
	}
	if rawLen != diskLen {
		return nil, 0, fmt.Errorf("%w: uncompressed record length mismatch", ErrCorrupt)
	}
	return body, recordHeaderSize + diskLen, nil
}

func putU32(b []byte, u uint32) {
	b[0], b[1], b[2], b[3] = byte(u), byte(u>>8), byte(u>>16), byte(u>>24)
}

func getU32(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

func putU64(b []byte, u uint64) {
	putU32(b, uint32(u))
	putU32(b[4:], uint32(u>>32))
}

func getU64(b []byte) uint64 {
	return uint64(getU32(b)) | uint64(getU32(b[4:]))<<32
}

func appendU32(dst []byte, u uint32) []byte {
	return append(dst, byte(u), byte(u>>8), byte(u>>16), byte(u>>24))
}

func appendU64(dst []byte, u uint64) []byte {
	dst = appendU32(dst, uint32(u))
	return appendU32(dst, uint32(u>>32))
}
