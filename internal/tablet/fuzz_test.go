package tablet

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"littletable/internal/block"
)

// Fuzz targets for the two decoders that parse bytes off disk: the tablet
// footer (schema JSON, block index, Bloom filter) and block payloads.
// Seeds come from real writer output, so the fuzzer starts from valid
// encodings and mutates toward the interesting edge cases; every target's
// contract is "return an error, never panic", since a corrupt tablet must
// quarantine (§3 robustness), not crash the daemon.

// fuzzSeedFile writes a small multi-block tablet with each writer
// configuration and returns the file contents.
func fuzzSeedFiles(tb testing.TB) [][]byte {
	tb.Helper()
	var out [][]byte
	for i, opts := range []WriterOptions{
		// Small BlockSize keeps seed files to a few kB so the mutation
		// engine's per-exec cost stays low while still covering multi-block
		// indexes, compression framing, and Bloom sections.
		{BlockSize: 512},
		{BlockSize: 512, DisableCompression: true},
		{BlockSize: 512, DisableBloom: true},
		{BlockSize: 1 << 10},
	} {
		dir := tb.TempDir()
		path := filepath.Join(dir, "seed.tab")
		w, err := Create(path, testSchema(tb), opts)
		if err != nil {
			tb.Fatal(err)
		}
		for _, r := range seqRows(24 * (i + 1)) {
			if err := w.Append(r); err != nil {
				tb.Fatal(err)
			}
		}
		if _, err := w.Close(); err != nil {
			tb.Fatal(err)
		}
		b, err := os.ReadFile(path)
		if err != nil {
			tb.Fatal(err)
		}
		out = append(out, b)
	}
	return out
}

// memFile adapts a byte slice to the Tablet File interface.
type memFile struct{ *bytes.Reader }

func (memFile) Close() error { return nil }

// FuzzParseFooter mutates marshalled footers (the already-decompressed
// record payload).
func FuzzParseFooter(f *testing.F) {
	for _, fileBytes := range fuzzSeedFiles(f) {
		tab, err := OpenFile(memFile{bytes.NewReader(fileBytes)}, int64(len(fileBytes)))
		if err != nil {
			f.Fatal(err)
		}
		f.Add(tab.ft.marshal())
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<20 {
			return
		}
		ft, err := parseFooter(data)
		if err != nil {
			return
		}
		// A footer that parses must be safe to walk.
		for i := range ft.blocks {
			_, _ = ft.sc.DecodeKey(ft.blocks[i].lastKey)
		}
	})
}

// FuzzOpenTablet mutates whole tablet files: trailer, compressed footer
// record, block records. Anything that opens must also scan without
// panicking (errors are expected and fine).
func FuzzOpenTablet(f *testing.F) {
	for _, fileBytes := range fuzzSeedFiles(f) {
		f.Add(fileBytes)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<20 {
			return
		}
		tab, err := OpenFile(memFile{bytes.NewReader(data)}, int64(len(data)))
		if err != nil {
			return
		}
		c := tab.Cursor(true)
		for i := 0; i < 1<<16 && c.Next(); i++ {
		}
		_ = c.Err()
		c.Close()
	})
}

// FuzzBlockParse mutates raw (decompressed) block payloads.
func FuzzBlockParse(f *testing.F) {
	sc := testSchema(f)
	for _, fileBytes := range fuzzSeedFiles(f) {
		tab, err := OpenFile(memFile{bytes.NewReader(fileBytes)}, int64(len(fileBytes)))
		if err != nil {
			f.Fatal(err)
		}
		for i := 0; i < len(tab.ft.blocks) && i < 4; i++ {
			payload, _, err := readRecord(tab.f, tab.ft.blocks[i].offset, tab.size)
			if err != nil {
				f.Fatal(err)
			}
			f.Add(payload)
		}
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<20 {
			return
		}
		blk, err := block.Parse(sc, data)
		if err != nil {
			return
		}
		// A block that parses must yield its rows and answer searches
		// without panicking; row-level errors are acceptable.
		for i := 0; i < blk.Len(); i++ {
			if _, err := blk.Row(i); err != nil {
				return
			}
		}
		_, _ = blk.Search(key(1, 1, 1))
		_, _ = blk.SearchAfter(key(1, 1, 1))
	})
}
