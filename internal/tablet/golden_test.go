package tablet

import (
	"bytes"
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"littletable/internal/block"
	"littletable/internal/ltval"
	"littletable/internal/schema"
)

// The golden fixtures under testdata/ are tablets written by the
// pre-columnar (footer version 1) format. They are checked in, never
// regenerated implicitly, and pin two compatibility promises:
//
//  1. today's reader parses yesterday's tablets, row for row;
//  2. today's legacy-mode writer still emits yesterday's bytes, so a
//     fleet mixing old and new binaries can share tablet files.
//
// Regenerate (only after a deliberate, reader-compatible format change)
// with: go test ./internal/tablet -run TestGoldenFixtures -regen-golden
var regenGolden = flag.Bool("regen-golden", false, "rewrite the golden tablet fixtures under testdata/")

const (
	goldenCompressed = "testdata/v1_compressed.tab"
	goldenPlain      = "testdata/v1_plain.tab"
	goldenCorrupt    = "testdata/v1_corrupt.tab"
	goldenRowCount   = 600
)

// goldenSchema exercises every column class the encoder distinguishes:
// integers, a timestamp, a float, and two byte-like columns.
func goldenSchema(t testing.TB) *schema.Schema {
	t.Helper()
	return schema.MustNew([]schema.Column{
		{Name: "network", Type: ltval.Int64},
		{Name: "device", Type: ltval.Int32},
		{Name: "ts", Type: ltval.Timestamp},
		{Name: "gauge", Type: ltval.Double},
		{Name: "state", Type: ltval.String},
		{Name: "payload", Type: ltval.Blob},
	}, []string{"network", "device", "ts"})
}

// goldenRows is the fixture dataset: deterministic, already in key order,
// mixing regular timestamps, a low-cardinality string column, and noisy
// floats/blobs.
func goldenRows() []schema.Row {
	rng := rand.New(rand.NewSource(42))
	states := []string{"up", "down", "flapping"}
	rows := make([]schema.Row, 0, goldenRowCount)
	for i := 0; i < goldenRowCount; i++ {
		rows = append(rows, schema.Row{
			ltval.NewInt64(int64(i / 200)),
			ltval.NewInt32(int32((i / 20) % 10)),
			ltval.NewTimestamp(int64(i%20)*60_000_000 + int64(rng.Intn(1000))),
			ltval.NewDouble(20 + 5*rng.Float64()),
			ltval.NewString(states[i%len(states)]),
			ltval.NewBlob([]byte(fmt.Sprintf("sample-%04d-%x", i, rng.Uint32()))),
		})
	}
	return rows
}

func writeGoldenTablet(t *testing.T, path string, opts WriterOptions) {
	t.Helper()
	w, err := Create(path, goldenSchema(t), opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range goldenRows() {
		if err := w.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

// corruptGoldenBytes flips one bit inside the first block's payload —
// past the record header, before the footer — so the damage is exactly
// the kind the per-record CRC exists to catch.
func corruptGoldenBytes(b []byte) []byte {
	out := append([]byte(nil), b...)
	out[recordHeaderSize+20] ^= 0x10
	return out
}

func TestGoldenFixtures(t *testing.T) {
	if *regenGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		writeGoldenTablet(t, goldenCompressed, WriterOptions{Encoding: block.ModeLegacy})
		writeGoldenTablet(t, goldenPlain, WriterOptions{Encoding: block.ModeLegacy, DisableCompression: true})
		raw, err := os.ReadFile(goldenCompressed)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenCorrupt, corruptGoldenBytes(raw), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("regenerated golden fixtures under testdata/")
	}

	for _, path := range []string{goldenCompressed, goldenPlain} {
		t.Run(filepath.Base(path), func(t *testing.T) {
			tab, err := Open(path)
			if err != nil {
				t.Fatalf("open golden fixture: %v", err)
			}
			defer tab.Close()
			if v := tab.FormatVersion(); v != formatVersionV1 {
				t.Fatalf("golden fixture parsed as footer version %d, want %d", v, formatVersionV1)
			}
			want := goldenRows()
			c := tab.Cursor(true)
			i := 0
			for c.Next() {
				if i >= len(want) {
					t.Fatalf("fixture has more than %d rows", len(want))
				}
				got := c.Row()
				for j := range want[i] {
					if !got[j].Equal(want[i][j]) {
						t.Fatalf("row %d col %d: got %v, want %v", i, j, got[j], want[i][j])
					}
				}
				i++
			}
			if err := c.Err(); err != nil {
				t.Fatal(err)
			}
			if i != len(want) {
				t.Fatalf("fixture yielded %d rows, want %d", i, len(want))
			}
		})
	}
}

// TestGoldenLegacyWriterByteIdentical pins the legacy encoding mode to the
// exact pre-columnar output: a binary running -block-encoding=legacy must
// produce files an old reader can open, which this asserts in the
// strongest possible form.
func TestGoldenLegacyWriterByteIdentical(t *testing.T) {
	cases := []struct {
		fixture string
		opts    WriterOptions
	}{
		{goldenCompressed, WriterOptions{Encoding: block.ModeLegacy}},
		{goldenPlain, WriterOptions{Encoding: block.ModeLegacy, DisableCompression: true}},
	}
	for _, tc := range cases {
		t.Run(filepath.Base(tc.fixture), func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "fresh.tab")
			writeGoldenTablet(t, path, tc.opts)
			fresh, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			golden, err := os.ReadFile(tc.fixture)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(fresh, golden) {
				t.Fatalf("legacy-mode writer output drifted from golden fixture %s: %d bytes vs %d",
					tc.fixture, len(fresh), len(golden))
			}
		})
	}
}

// TestGoldenAutoReencodesFixtureRows proves a merge-shaped rewrite: rows
// read from a v1 fixture, re-written in auto mode, come back identical
// through the columnar path.
func TestGoldenAutoReencodesFixtureRows(t *testing.T) {
	tab, err := Open(goldenCompressed)
	if err != nil {
		t.Fatal(err)
	}
	defer tab.Close()
	var rows []schema.Row
	c := tab.Cursor(true)
	for c.Next() {
		rows = append(rows, append(schema.Row(nil), c.Row()...))
	}
	if err := c.Err(); err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(t.TempDir(), "re.tab")
	w, err := Create(path, goldenSchema(t), WriterOptions{Encoding: block.ModeAuto})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if err := w.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := w.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if v := re.FormatVersion(); v != formatVersion {
		t.Fatalf("auto-mode tablet parsed as footer version %d, want %d", v, formatVersion)
	}
	rc := re.Cursor(true)
	i := 0
	for rc.Next() {
		got := rc.Row()
		for j := range rows[i] {
			if !got[j].Equal(rows[i][j]) {
				t.Fatalf("re-encoded row %d col %d: got %v, want %v", i, j, got[j], rows[i][j])
			}
		}
		i++
	}
	if err := rc.Err(); err != nil {
		t.Fatal(err)
	}
	if i != len(rows) {
		t.Fatalf("re-encoded tablet yielded %d rows, want %d", i, len(rows))
	}
}

// TestGoldenCorruptFixtureRejected asserts the damaged fixture is caught
// by verification and by scans — as ErrCorrupt, never as wrong rows.
func TestGoldenCorruptFixtureRejected(t *testing.T) {
	tab, err := Open(goldenCorrupt)
	if err != nil {
		// Equally acceptable: damage detected at open time.
		if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("open corrupt fixture: got %v, want ErrCorrupt", err)
		}
		return
	}
	defer tab.Close()
	if err := tab.VerifyBlocks(); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("VerifyBlocks on corrupt fixture: got %v, want ErrCorrupt", err)
	}
	c := tab.Cursor(true)
	for c.Next() {
	}
	if err := c.Err(); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("scan of corrupt fixture: got %v, want ErrCorrupt", err)
	}
}
