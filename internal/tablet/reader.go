package tablet

import (
	"context"
	"errors"
	"fmt"
	"io"

	"littletable/internal/block"
	"littletable/internal/blockcache"
	"littletable/internal/bloom"
	"littletable/internal/ltval"
	"littletable/internal/schema"
	"littletable/internal/vfs"
)

// File is the read abstraction a Tablet needs. *os.File and vfs.File
// satisfy it; the iotrace package wraps one to record access patterns for
// the disk-model benchmarks (Figures 5 and 6).
type File interface {
	io.ReaderAt
	io.Closer
}

// Tablet is an open on-disk tablet. Concurrent reads are safe; each query
// opens its own Cursor.
type Tablet struct {
	f    File
	size int64
	ft   *footer
	path string

	// Optional shared block cache; tablets are immutable, so parsed blocks
	// cache safely under a handle id unique to this open instance.
	cache  *blockcache.Cache
	handle uint64
}

// SetBlockCache attaches a shared cache; handle must be unique among open
// tablets sharing it (the engine hands out a counter).
func (t *Tablet) SetBlockCache(c *blockcache.Cache, handle uint64) {
	t.cache = c
	t.handle = handle
}

// Open opens the tablet file at path on the real filesystem and loads its
// footer.
func Open(path string) (*Tablet, error) { return OpenFS(vfs.OsFS{}, path) }

// OpenFS opens the tablet file at path through fsys and loads its footer.
func OpenFS(fsys vfs.FS, path string) (*Tablet, error) {
	f, err := fsys.Open(path)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	t, err := OpenFile(f, st.Size())
	if err != nil {
		f.Close()
		return nil, err
	}
	t.path = path
	return t, nil
}

// OpenFile opens a tablet from any File of the given size. Reading the
// footer costs three accesses — trailer, footer header, footer body — which
// with the inode read is the paper's "three seeks to read a tablet's
// footer" (§3.5).
func OpenFile(f File, size int64) (*Tablet, error) {
	if size < trailerSize {
		return nil, fmt.Errorf("%w: %d bytes", ErrBadMagic, size)
	}
	var tr [trailerSize]byte
	if _, err := f.ReadAt(tr[:], size-trailerSize); err != nil {
		return nil, err
	}
	if getU64(tr[8:]) != magic {
		return nil, ErrBadMagic
	}
	footerOff := int64(getU64(tr[:]))
	payload, _, err := readRecord(f, footerOff, size-trailerSize)
	if err != nil {
		return nil, err
	}
	ft, err := parseFooter(payload)
	if err != nil {
		return nil, err
	}
	return &Tablet{f: f, size: size, ft: ft}, nil
}

// Close releases the underlying file.
func (t *Tablet) Close() error { return t.f.Close() }

// Path returns the file path, if opened by path.
func (t *Tablet) Path() string { return t.path }

// Schema returns the schema the tablet was written under.
func (t *Tablet) Schema() *schema.Schema { return t.ft.sc }

// RowCount returns the number of rows in the tablet.
func (t *Tablet) RowCount() int64 { return t.ft.rowCount }

// SizeBytes returns the on-disk size of the tablet file.
func (t *Tablet) SizeBytes() int64 { return t.size }

// ReadRawAt reads the tablet file's bytes at off, for shipping a sealed
// tablet to another shard verbatim: tablets are immutable once written, so
// a byte copy of the file plus a descriptor entry IS a replica. Reads past
// the end are truncated; io.EOF is only returned when off is at or past
// the end.
func (t *Tablet) ReadRawAt(p []byte, off int64) (int, error) {
	if off >= t.size {
		return 0, io.EOF
	}
	if max := t.size - off; int64(len(p)) > max {
		p = p[:max]
	}
	return t.f.ReadAt(p, off)
}

// Timespan returns the smallest and largest row timestamps.
func (t *Tablet) Timespan() (minTs, maxTs int64) { return t.ft.minTs, t.ft.maxTs }

// BlockCount returns the number of 64 kB blocks.
func (t *Tablet) BlockCount() int { return len(t.ft.blocks) }

// Filter returns the tablet's Bloom filter, or nil if written without one.
func (t *Tablet) Filter() *bloom.Filter { return t.ft.filter }

// MayContainKey consults the Bloom filter for an encoded full primary key
// (schema.AppendKey form). Without a filter it conservatively returns true.
func (t *Tablet) MayContainKey(encodedKey []byte) bool {
	if t.ft.filter == nil {
		return true
	}
	return t.ft.filter.MayContain(encodedKey)
}

// LastKey returns the largest primary key in the tablet, decoded, for the
// ascending-insert uniqueness fast path (§3.4.4).
func (t *Tablet) LastKey() ([]ltval.Value, error) {
	if len(t.ft.blocks) == 0 {
		return nil, nil
	}
	return t.ft.sc.DecodeKey(t.ft.blocks[len(t.ft.blocks)-1].lastKey)
}

// VerifyBlocks reads every block record and checks its framing and
// checksum, without parsing rows or touching the block cache. It detects
// latent corruption — bit flips, truncation inside a block — that footer
// loading alone cannot see, so the engine can quarantine a damaged tablet
// at open instead of failing queries later.
func (t *Tablet) VerifyBlocks() error {
	for i := range t.ft.blocks {
		bm := &t.ft.blocks[i]
		payload, _, err := readRecord(t.f, bm.offset, t.size)
		if err != nil {
			return fmt.Errorf("block %d: %w", i, err)
		}
		if len(payload) != int(bm.rawLen) {
			return fmt.Errorf("%w: block %d raw length %d, want %d", ErrCorrupt, i, len(payload), bm.rawLen)
		}
	}
	return nil
}

// loadBlock reads, verifies, and parses block i, consulting the shared
// block cache when attached.
func (t *Tablet) loadBlock(i int) (*block.Block, error) {
	return t.loadBlockCtx(nil, i)
}

// loadBlockCtx is loadBlock with a cancellation context (nil = none). All
// block reads funnel through here: when a cache is attached, concurrent
// loads of the same block are deduplicated by the cache's singleflight, so
// overlapping queries on one cold tablet read and parse each block once.
func (t *Tablet) loadBlockCtx(ctx context.Context, i int) (*block.Block, error) {
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
	}
	if t.cache == nil {
		blk, _, err := t.readParseBlock(ctx, i)
		return blk, err
	}
	v, err := t.cache.GetOrLoad(blockcache.Key{Handle: t.handle, Index: i}, func() (interface{}, int64, error) {
		blk, size, err := t.readParseBlock(ctx, i)
		return blk, size, err
	})
	if err != nil {
		// A singleflight leader cancelled by its own query poisons the
		// shared result; if this caller is still live, load directly
		// rather than failing a healthy query on someone else's timeout.
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			if ctx == nil || ctx.Err() == nil {
				blk, _, derr := t.readParseBlock(ctx, i)
				return blk, derr
			}
		}
		return nil, err
	}
	return v.(*block.Block), nil
}

// readParseBlock does the physical read, verification, and parse of block
// i, reporting the parsed block and its in-memory (uncompressed) size.
func (t *Tablet) readParseBlock(ctx context.Context, i int) (*block.Block, int64, error) {
	bm := &t.ft.blocks[i]
	payload, _, err := readRecord(vfs.CtxReaderAt{Ctx: ctx, R: t.f}, bm.offset, t.size)
	if err != nil {
		return nil, 0, err
	}
	if len(payload) != int(bm.rawLen) {
		return nil, 0, fmt.Errorf("%w: block %d raw length %d, want %d", ErrCorrupt, i, len(payload), bm.rawLen)
	}
	blk, err := block.Decode(t.ft.sc, bm.enc, payload)
	if err != nil {
		return nil, 0, err
	}
	return blk, int64(bm.rawLen), nil
}

// FormatVersion returns the footer layout version the tablet was written
// with: 1 for pre-columnar tablets (and legacy-mode output), 2 for tablets
// whose footer records per-block encodings.
func (t *Tablet) FormatVersion() uint32 { return t.ft.version }

// comparePrefix orders a full stored key against a possibly-short probe
// key, treating the probe as a prefix (equal prefix compares equal).
func comparePrefix(sc *schema.Schema, fullKey []byte, probe []ltval.Value) (int, error) {
	full, err := sc.DecodeKey(fullKey)
	if err != nil {
		return 0, err
	}
	n := len(probe)
	if n > len(full) {
		n = len(full)
	}
	for i := 0; i < n; i++ {
		if c := full[i].Compare(probe[i]); c != 0 {
			return c, nil
		}
	}
	return 0, nil
}

// searchBlocks returns the index of the first block whose last key is >=
// probe (prefix semantics), or BlockCount() if none.
func (t *Tablet) searchBlocks(probe []ltval.Value) (int, error) {
	lo, hi := 0, len(t.ft.blocks)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		c, err := comparePrefix(t.ft.sc, t.ft.blocks[mid].lastKey, probe)
		if err != nil {
			return 0, err
		}
		if c < 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo, nil
}

// searchBlocksAfter returns the index of the first block whose last key is
// strictly > probe (prefix semantics).
func (t *Tablet) searchBlocksAfter(probe []ltval.Value) (int, error) {
	lo, hi := 0, len(t.ft.blocks)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		c, err := comparePrefix(t.ft.sc, t.ft.blocks[mid].lastKey, probe)
		if err != nil {
			return 0, err
		}
		if c <= 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo, nil
}
