package tablet

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"littletable/internal/ltval"
	"littletable/internal/schema"
)

func testSchema(t testing.TB) *schema.Schema {
	t.Helper()
	return schema.MustNew([]schema.Column{
		{Name: "network", Type: ltval.Int64},
		{Name: "device", Type: ltval.Int64},
		{Name: "ts", Type: ltval.Timestamp},
		{Name: "payload", Type: ltval.Blob},
	}, []string{"network", "device", "ts"})
}

func row(n, d, ts int64, payload []byte) schema.Row {
	return schema.Row{ltval.NewInt64(n), ltval.NewInt64(d), ltval.NewTimestamp(ts), ltval.NewBlob(payload)}
}

func key(vals ...int64) []ltval.Value {
	out := make([]ltval.Value, len(vals))
	for i, v := range vals {
		if i == 2 {
			out[i] = ltval.NewTimestamp(v)
		} else {
			out[i] = ltval.NewInt64(v)
		}
	}
	return out
}

// writeTablet writes rows (which must already be in key order) and opens
// the result.
func writeTablet(t testing.TB, dir string, opts WriterOptions, rows []schema.Row) *Tablet {
	t.Helper()
	path := filepath.Join(dir, "t.tab")
	w, err := Create(path, testSchema(t), opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if err := w.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	info, err := w.Close()
	if err != nil {
		t.Fatal(err)
	}
	if info.RowCount != int64(len(rows)) {
		t.Fatalf("Info.RowCount = %d, want %d", info.RowCount, len(rows))
	}
	tab, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { tab.Close() })
	return tab
}

func seqRows(n int) []schema.Row {
	rows := make([]schema.Row, 0, n)
	for i := 0; i < n; i++ {
		rows = append(rows, row(int64(i/100), int64((i/10)%10), int64(i%10)*1000, []byte(fmt.Sprintf("payload-%06d", i))))
	}
	return rows
}

func TestWriteReadRoundTrip(t *testing.T) {
	rows := seqRows(5000)
	tab := writeTablet(t, t.TempDir(), WriterOptions{}, rows)
	if tab.RowCount() != 5000 {
		t.Fatalf("RowCount = %d", tab.RowCount())
	}
	lo, hi := tab.Timespan()
	if lo != 0 || hi != 9000 {
		t.Errorf("Timespan = [%d, %d]", lo, hi)
	}
	c := tab.Cursor(true)
	i := 0
	for c.Next() {
		r := c.Row()
		want := rows[i]
		for j := range want {
			if !r[j].Equal(want[j]) {
				t.Fatalf("row %d col %d: got %v, want %v", i, j, r[j], want[j])
			}
		}
		i++
	}
	if c.Err() != nil {
		t.Fatal(c.Err())
	}
	if i != 5000 {
		t.Fatalf("cursor returned %d rows", i)
	}
}

func TestDescendingScan(t *testing.T) {
	rows := seqRows(3000)
	tab := writeTablet(t, t.TempDir(), WriterOptions{}, rows)
	c := tab.Cursor(false)
	i := len(rows) - 1
	for c.Next() {
		if tab.Schema().CompareKeys(c.Row(), rows[i]) != 0 {
			t.Fatalf("descending row %d mismatch", i)
		}
		i--
	}
	if i != -1 {
		t.Fatalf("descending cursor stopped at %d", i)
	}
}

func TestMultiBlock(t *testing.T) {
	// Small blocks force many of them.
	rows := seqRows(2000)
	tab := writeTablet(t, t.TempDir(), WriterOptions{BlockSize: 1024}, rows)
	if tab.BlockCount() < 10 {
		t.Fatalf("BlockCount = %d, want many", tab.BlockCount())
	}
	c := tab.Cursor(true)
	n := 0
	for c.Next() {
		n++
	}
	if n != 2000 {
		t.Fatalf("scanned %d rows across blocks", n)
	}
}

func TestSeekAscending(t *testing.T) {
	rows := seqRows(2000)
	tab := writeTablet(t, t.TempDir(), WriterOptions{BlockSize: 512}, rows)
	// Exact key: row 1234 has (12, 3, 4000).
	c, err := tab.Seek(key(12, 3, 4000), true)
	if err != nil {
		t.Fatal(err)
	}
	if !c.Next() {
		t.Fatal("seek found nothing")
	}
	r := c.Row()
	if r[0].Int != 12 || r[1].Int != 3 || r[2].Int != 4000 {
		t.Fatalf("seek landed on (%d,%d,%d)", r[0].Int, r[1].Int, r[2].Int)
	}
	// Prefix: first row of network 7.
	c, err = tab.Seek(key(7), true)
	if err != nil {
		t.Fatal(err)
	}
	c.Next()
	r = c.Row()
	if r[0].Int != 7 || r[1].Int != 0 || r[2].Int != 0 {
		t.Fatalf("prefix seek landed on (%d,%d,%d)", r[0].Int, r[1].Int, r[2].Int)
	}
	// Past the end.
	c, err = tab.Seek(key(100), true)
	if err != nil {
		t.Fatal(err)
	}
	if c.Next() {
		t.Error("seek past end returned rows")
	}
}

func TestSeekDescending(t *testing.T) {
	rows := seqRows(2000)
	tab := writeTablet(t, t.TempDir(), WriterOptions{BlockSize: 512}, rows)
	// Last row <= (12, 3, 4500) is (12, 3, 4000).
	c, err := tab.Seek(key(12, 3, 4500), false)
	if err != nil {
		t.Fatal(err)
	}
	c.Next()
	r := c.Row()
	if r[0].Int != 12 || r[1].Int != 3 || r[2].Int != 4000 {
		t.Fatalf("descending seek landed on (%d,%d,%d)", r[0].Int, r[1].Int, r[2].Int)
	}
	// Prefix: last row of network 7 is (7, 9, 9000).
	c, err = tab.Seek(key(7), false)
	if err != nil {
		t.Fatal(err)
	}
	c.Next()
	r = c.Row()
	if r[0].Int != 7 || r[1].Int != 9 || r[2].Int != 9000 {
		t.Fatalf("descending prefix seek landed on (%d,%d,%d)", r[0].Int, r[1].Int, r[2].Int)
	}
	// Before the beginning.
	c, err = tab.Seek(key(-1), false)
	if err != nil {
		t.Fatal(err)
	}
	if c.Next() {
		t.Error("descending seek before start returned rows")
	}
	// After the end: should land on the very last row.
	c, err = tab.Seek(key(100), false)
	if err != nil {
		t.Fatal(err)
	}
	c.Next()
	if r := c.Row(); r[0].Int != 19 || r[1].Int != 9 || r[2].Int != 9000 {
		t.Fatalf("descending seek after end landed on (%d,%d,%d)", r[0].Int, r[1].Int, r[2].Int)
	}
}

func TestSeekRandomizedAgainstLinearScan(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	var rows []schema.Row
	seen := map[[3]int64]bool{}
	for len(rows) < 600 {
		k := [3]int64{rng.Int63n(8), rng.Int63n(12), rng.Int63n(50) * 100}
		if seen[k] {
			continue
		}
		seen[k] = true
		rows = append(rows, row(k[0], k[1], k[2], nil))
	}
	sc := testSchema(t)
	sortRows(sc, rows)
	tab := writeTablet(t, t.TempDir(), WriterOptions{BlockSize: 256}, rows)
	for trial := 0; trial < 300; trial++ {
		probe := key(rng.Int63n(9), rng.Int63n(13), rng.Int63n(5100))
		// Linear reference for ascending.
		wantIdx := -1
		for i, r := range rows {
			if sc.CompareRowToKey(r, probe) >= 0 {
				wantIdx = i
				break
			}
		}
		c, err := tab.Seek(probe, true)
		if err != nil {
			t.Fatal(err)
		}
		if wantIdx == -1 {
			if c.Next() {
				t.Fatalf("trial %d: expected exhausted cursor", trial)
			}
		} else if !c.Next() || sc.CompareKeys(c.Row(), rows[wantIdx]) != 0 {
			t.Fatalf("trial %d: ascending seek mismatch", trial)
		}
		// Linear reference for descending.
		wantIdx = -1
		for i := len(rows) - 1; i >= 0; i-- {
			if sc.CompareRowToKey(rows[i], probe) <= 0 {
				wantIdx = i
				break
			}
		}
		c, err = tab.Seek(probe, false)
		if err != nil {
			t.Fatal(err)
		}
		if wantIdx == -1 {
			if c.Next() {
				t.Fatalf("trial %d: expected exhausted descending cursor", trial)
			}
		} else if !c.Next() || sc.CompareKeys(c.Row(), rows[wantIdx]) != 0 {
			t.Fatalf("trial %d: descending seek mismatch", trial)
		}
	}
}

func sortRows(sc *schema.Schema, rows []schema.Row) {
	for i := 1; i < len(rows); i++ {
		for j := i; j > 0 && sc.CompareKeys(rows[j-1], rows[j]) > 0; j-- {
			rows[j-1], rows[j] = rows[j], rows[j-1]
		}
	}
}

func TestOutOfOrderRejected(t *testing.T) {
	dir := t.TempDir()
	w, err := Create(filepath.Join(dir, "x.tab"), testSchema(t), WriterOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Abort()
	if err := w.Append(row(2, 0, 0, nil)); err != nil {
		t.Fatal(err)
	}
	if err := w.Append(row(1, 0, 0, nil)); err == nil {
		t.Error("out-of-order append accepted")
	}
	if err := w.Append(row(2, 0, 0, nil)); err == nil {
		t.Error("duplicate key append accepted")
	}
}

func TestEmptyTablet(t *testing.T) {
	tab := writeTablet(t, t.TempDir(), WriterOptions{}, nil)
	if tab.RowCount() != 0 || tab.BlockCount() != 0 {
		t.Error("empty tablet has rows")
	}
	if c := tab.Cursor(true); c.Next() {
		t.Error("empty tablet cursor yields rows")
	}
	c, err := tab.Seek(key(1), true)
	if err != nil {
		t.Fatal(err)
	}
	if c.Next() {
		t.Error("seek on empty tablet yields rows")
	}
	lk, err := tab.LastKey()
	if err != nil || lk != nil {
		t.Error("empty tablet has a last key")
	}
}

func TestBloomFilter(t *testing.T) {
	rows := seqRows(1000)
	tab := writeTablet(t, t.TempDir(), WriterOptions{}, rows)
	if tab.Filter() == nil {
		t.Fatal("no bloom filter")
	}
	sc := tab.Schema()
	for _, r := range rows[:100] {
		if !tab.MayContainKey(sc.AppendKey(nil, r)) {
			t.Fatal("bloom false negative")
		}
	}
	miss := 0
	for i := 0; i < 1000; i++ {
		probe := sc.AppendKey(nil, row(999, int64(i), 1, nil))
		if !tab.MayContainKey(probe) {
			miss++
		}
	}
	if miss < 950 {
		t.Errorf("bloom filtered only %d/1000 absent keys", miss)
	}
}

func TestNoBloomOption(t *testing.T) {
	tab := writeTablet(t, t.TempDir(), WriterOptions{DisableBloom: true}, seqRows(10))
	if tab.Filter() != nil {
		t.Error("filter present despite DisableBloom")
	}
	if !tab.MayContainKey([]byte("anything")) {
		t.Error("MayContainKey must be conservative without a filter")
	}
}

func TestLastKey(t *testing.T) {
	tab := writeTablet(t, t.TempDir(), WriterOptions{}, seqRows(500))
	lk, err := tab.LastKey()
	if err != nil {
		t.Fatal(err)
	}
	if lk[0].Int != 4 || lk[1].Int != 9 || lk[2].Int != 9000 {
		t.Fatalf("LastKey = %v", lk)
	}
}

func TestCompressionShrinksFile(t *testing.T) {
	dir := t.TempDir()
	rows := make([]schema.Row, 2000)
	for i := range rows {
		rows[i] = row(1, int64(i), 0, []byte("aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa"))
	}
	wc, err := Create(filepath.Join(dir, "c.tab"), testSchema(t), WriterOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		wc.Append(r)
	}
	ic, err := wc.Close()
	if err != nil {
		t.Fatal(err)
	}
	wu, err := Create(filepath.Join(dir, "u.tab"), testSchema(t), WriterOptions{DisableCompression: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		wu.Append(r)
	}
	iu, err := wu.Close()
	if err != nil {
		t.Fatal(err)
	}
	if ic.Bytes >= iu.Bytes {
		t.Errorf("compressed %d >= uncompressed %d", ic.Bytes, iu.Bytes)
	}
	// Both must read back identically.
	for _, p := range []string{ic.Path, iu.Path} {
		tab, err := Open(p)
		if err != nil {
			t.Fatal(err)
		}
		n := 0
		c := tab.Cursor(true)
		for c.Next() {
			n++
		}
		tab.Close()
		if n != 2000 {
			t.Fatalf("%s: %d rows", p, n)
		}
	}
}

func TestOpenRejectsGarbage(t *testing.T) {
	dir := t.TempDir()
	p := filepath.Join(dir, "garbage")
	if err := os.WriteFile(p, []byte("this is not a tablet file at all......."), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(p); err == nil {
		t.Error("garbage file opened as tablet")
	}
	if err := os.WriteFile(p, []byte{1, 2}, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(p); err == nil {
		t.Error("tiny file opened as tablet")
	}
	if _, err := Open(filepath.Join(dir, "missing")); err == nil {
		t.Error("missing file opened")
	}
}

func TestOpenDetectsCorruption(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "t.tab")
	w, err := Create(path, testSchema(t), WriterOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range seqRows(1000) {
		w.Append(r)
	}
	if _, err := w.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a byte in the middle of the first block's payload.
	mut := append([]byte{}, data...)
	mut[recordHeaderSize+10] ^= 0xff
	if err := os.WriteFile(path, mut, 0o644); err != nil {
		t.Fatal(err)
	}
	tab, err := Open(path)
	if err != nil {
		t.Fatal(err) // footer is intact
	}
	defer tab.Close()
	c := tab.Cursor(true)
	for c.Next() {
	}
	if c.Err() == nil {
		t.Error("corrupted block read without error")
	}
}

func TestCrashLeavesNoPartialTablet(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "t.tab")
	w, err := Create(path, testSchema(t), WriterOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range seqRows(100) {
		w.Append(r)
	}
	// Abort simulates a crash before Close: the real file must not exist.
	if err := w.Abort(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Error("partial tablet visible at final path")
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 0 {
		t.Errorf("%d leftover files after abort", len(ents))
	}
}

func TestUseAfterClose(t *testing.T) {
	dir := t.TempDir()
	w, err := Create(filepath.Join(dir, "t.tab"), testSchema(t), WriterOptions{})
	if err != nil {
		t.Fatal(err)
	}
	w.Append(row(1, 1, 1, nil))
	if _, err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.Append(row(2, 2, 2, nil)); err != ErrClosed {
		t.Errorf("Append after close: %v", err)
	}
	if _, err := w.Close(); err != ErrClosed {
		t.Errorf("double close: %v", err)
	}
}

func TestCursorBlocksReadAccounting(t *testing.T) {
	rows := seqRows(2000)
	tab := writeTablet(t, t.TempDir(), WriterOptions{BlockSize: 1024}, rows)
	c, err := tab.Seek(key(10, 0, 0), true)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10 && c.Next(); i++ {
	}
	if c.BlocksRead < 1 || c.BlocksRead > 2 {
		t.Errorf("BlocksRead = %d for a 10-row point read", c.BlocksRead)
	}
	full := tab.Cursor(true)
	for full.Next() {
	}
	if full.BlocksRead != tab.BlockCount() {
		t.Errorf("full scan read %d blocks of %d", full.BlocksRead, tab.BlockCount())
	}
}

func BenchmarkTabletWrite(b *testing.B) {
	dir := b.TempDir()
	sc := testSchema(b)
	payload := make([]byte, 100)
	b.SetBytes(128)
	b.ResetTimer()
	w, err := Create(filepath.Join(dir, "bench.tab"), sc, WriterOptions{})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		if err := w.Append(row(0, 0, int64(i), payload)); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	w.Close()
}

func BenchmarkTabletScan(b *testing.B) {
	dir := b.TempDir()
	tab := writeTablet(b, dir, WriterOptions{}, seqRows(100000))
	b.SetBytes(int64(tab.SizeBytes() / tab.RowCount()))
	b.ResetTimer()
	n := 0
	for i := 0; i < b.N; i++ {
		if n == 0 {
			c := tab.Cursor(true)
			for c.Next() {
				n++
				if n >= b.N-i {
					break
				}
			}
		}
		n--
	}
}
