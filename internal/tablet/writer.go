package tablet

import (
	"bufio"
	"fmt"

	"littletable/internal/block"
	"littletable/internal/bloom"
	"littletable/internal/schema"
	"littletable/internal/vfs"
)

// WriterOptions tune tablet creation. The zero value gives the paper's
// defaults.
type WriterOptions struct {
	// BlockSize is the uncompressed block target; default block.TargetSize
	// (64 kB, §3.2).
	BlockSize int
	// DisableCompression skips lzf, for benchmarks isolating disk cost.
	DisableCompression bool
	// DisableBloom skips the per-tablet Bloom filter (§3.4.5).
	DisableBloom bool
	// Encoding selects the block encoding mode: block.ModeAuto (default)
	// trial-encodes each block per column; block.ModeLegacy reproduces the
	// pre-columnar format exactly, including a version-1 footer, so the
	// output is parseable by old readers.
	Encoding block.Mode
	// Sync fsyncs the file before rename on Close, and the parent directory
	// after it (a rename without a directory fsync is not durable on ext4).
	// LittleTable's durability story tolerates losing recent tablets, so
	// syncing is optional and the engine syncs only at descriptor-update
	// boundaries.
	Sync bool

	// FS abstracts filesystem access; nil means the real OS filesystem.
	// Tests inject fault-injecting or crash-simulating implementations.
	FS vfs.FS
}

func (o *WriterOptions) fsys() vfs.FS {
	if o.FS != nil {
		return o.FS
	}
	return vfs.OsFS{}
}

func (o *WriterOptions) blockSize() int {
	if o.BlockSize > 0 {
		return o.BlockSize
	}
	return block.TargetSize
}

// Info summarizes a written tablet for the table descriptor.
type Info struct {
	Path     string
	RowCount int64
	MinTs    int64
	MaxTs    int64
	Bytes    int64 // on-disk size
	// Enc reports what the block encoder did, for the engine's counters.
	Enc block.EncodeStats
}

// Writer streams rows in ascending primary-key order into a new tablet
// file. The file is written under a temporary name and atomically renamed
// into place on Close, so a crash mid-flush leaves no partial tablet
// visible (§3.2's descriptor update makes it durable).
type Writer struct {
	path    string
	tmpPath string
	fsys    vfs.FS
	f       vfs.File
	w       *bufio.Writer
	opts    WriterOptions
	sc      *schema.Schema

	bw      *block.Writer
	ft      footer
	off     int64
	lastRow schema.Row
	blkMin  int64
	blkMax  int64
	hashes  []uint64 // h1,h2 pairs for the bloom filter
	scratch []byte
	closed  bool
}

// Create opens a tablet writer for rows of schema sc at path.
func Create(path string, sc *schema.Schema, opts WriterOptions) (*Writer, error) {
	tmp := path + ".tmp"
	fsys := opts.fsys()
	f, err := fsys.Create(tmp)
	if err != nil {
		return nil, err
	}
	ftVersion := uint32(formatVersion)
	if opts.Encoding == block.ModeLegacy {
		ftVersion = formatVersionV1
	}
	return &Writer{
		path:    path,
		tmpPath: tmp,
		fsys:    fsys,
		f:       f,
		w:       bufio.NewWriterSize(f, 1<<20),
		opts:    opts,
		sc:      sc,
		bw:      block.NewWriterMode(sc, opts.Encoding),
		ft:      footer{sc: sc, version: ftVersion},
	}, nil
}

// Append adds row, which must be in strictly ascending key order relative
// to all previous rows.
func (w *Writer) Append(row schema.Row) error {
	if w.closed {
		return ErrClosed
	}
	if w.lastRow != nil && w.sc.CompareKeys(w.lastRow, row) >= 0 {
		return fmt.Errorf("%w: key %v after %v", ErrOutOfOrder, w.sc.KeyOf(row), w.sc.KeyOf(w.lastRow))
	}
	ts := w.sc.Ts(row)
	if w.ft.rowCount == 0 {
		w.ft.minTs, w.ft.maxTs = ts, ts
	} else {
		if ts < w.ft.minTs {
			w.ft.minTs = ts
		}
		if ts > w.ft.maxTs {
			w.ft.maxTs = ts
		}
	}
	if w.bw.Count() == 0 {
		w.blkMin, w.blkMax = ts, ts
	} else {
		if ts < w.blkMin {
			w.blkMin = ts
		}
		if ts > w.blkMax {
			w.blkMax = ts
		}
	}
	w.bw.Append(row)
	w.ft.rowCount++
	if !w.opts.DisableBloom {
		h1, h2 := bloom.Hash(w.sc.AppendKey(w.scratch[:0], row))
		w.hashes = append(w.hashes, h1, h2)
	}
	// Retain a copy of the last row for order checking and the block's
	// last-key index entry; row contents may alias caller buffers.
	w.lastRow = schema.CloneRow(row)
	if w.bw.SizeBytes() >= w.opts.blockSize() {
		return w.flushBlock()
	}
	return nil
}

func (w *Writer) flushBlock() error {
	if w.bw.Count() == 0 {
		return nil
	}
	rowCount := w.bw.Count()
	img, enc := w.bw.Finish()
	rec, diskLen := appendRecord(nil, img, !w.opts.DisableCompression)
	if _, err := w.w.Write(rec); err != nil {
		return err
	}
	w.ft.blocks = append(w.ft.blocks, blockMeta{
		offset:   w.off,
		diskLen:  int32(diskLen),
		rawLen:   int32(len(img)),
		rowCount: int32(rowCount),
		enc:      enc,
		minTs:    w.blkMin,
		maxTs:    w.blkMax,
		lastKey:  w.sc.AppendKey(nil, w.lastRow),
	})
	w.off += int64(diskLen)
	return nil
}

// RowCount returns the number of rows appended so far.
func (w *Writer) RowCount() int64 { return w.ft.rowCount }

// Abort discards the partially-written tablet.
func (w *Writer) Abort() error {
	if w.closed {
		return nil
	}
	w.closed = true
	w.f.Close()
	return w.fsys.Remove(w.tmpPath)
}

// Close flushes remaining rows, writes the footer and trailer, optionally
// syncs, and renames the file into place. It returns the tablet's summary.
func (w *Writer) Close() (*Info, error) {
	if w.closed {
		return nil, ErrClosed
	}
	w.closed = true
	if err := w.flushBlock(); err != nil {
		w.cleanup()
		return nil, err
	}
	if !w.opts.DisableBloom && len(w.hashes) > 0 {
		w.ft.filter = bloom.New(len(w.hashes) / 2)
		for i := 0; i < len(w.hashes); i += 2 {
			w.ft.filter.AddHash(w.hashes[i], w.hashes[i+1])
		}
	}
	footerOff := w.off
	rec, diskLen := appendRecord(nil, w.ft.marshal(), !w.opts.DisableCompression)
	if _, err := w.w.Write(rec); err != nil {
		w.cleanup()
		return nil, err
	}
	w.off += int64(diskLen)
	var tr [trailerSize]byte
	putU64(tr[:], uint64(footerOff))
	putU64(tr[8:], magic)
	if _, err := w.w.Write(tr[:]); err != nil {
		w.cleanup()
		return nil, err
	}
	w.off += trailerSize
	if err := w.w.Flush(); err != nil {
		w.cleanup()
		return nil, err
	}
	if w.opts.Sync {
		if err := w.f.Sync(); err != nil {
			w.cleanup()
			return nil, err
		}
	}
	if err := w.f.Close(); err != nil {
		w.fsys.Remove(w.tmpPath)
		return nil, err
	}
	if err := w.fsys.Rename(w.tmpPath, w.path); err != nil {
		w.fsys.Remove(w.tmpPath)
		return nil, err
	}
	if w.opts.Sync {
		// Make the rename durable: without a directory fsync the new entry
		// may not survive a power cut even though the file data did.
		if err := w.fsys.SyncDir(vfs.DirOf(w.path)); err != nil {
			return nil, err
		}
	}
	return &Info{
		Path:     w.path,
		RowCount: w.ft.rowCount,
		MinTs:    w.ft.minTs,
		MaxTs:    w.ft.maxTs,
		Bytes:    w.off,
		Enc:      w.bw.Stats(),
	}, nil
}

func (w *Writer) cleanup() {
	w.f.Close()
	w.fsys.Remove(w.tmpPath)
}
