package vfs

import (
	"context"
	"io"
)

// CtxReaderAt threads a context through an io.ReaderAt: each ReadAt fails
// fast with the context's error once it is cancelled or past its deadline.
// The storage layers pass one of these down so a cancelled query stops
// issuing I/O (prefetchers included) instead of running to completion.
//
// A nil Ctx reads unconditionally, so callers can thread an optional
// context without branching.
type CtxReaderAt struct {
	Ctx context.Context
	R   io.ReaderAt
}

// ReadAt implements io.ReaderAt.
func (c CtxReaderAt) ReadAt(p []byte, off int64) (int, error) {
	if c.Ctx != nil {
		if err := c.Ctx.Err(); err != nil {
			return 0, err
		}
	}
	return c.R.ReadAt(p, off)
}
