package vfs

import (
	"errors"
	"io/fs"
	"strings"
	"sync"
	"sync/atomic"
)

// ErrInjected is the default error returned by injected faults.
var ErrInjected = errors.New("vfs: injected fault")

// Op identifies a filesystem operation for fault matching.
type Op string

// Operations a Fault can target.
const (
	OpCreate  Op = "create"
	OpOpen    Op = "open"
	OpRead    Op = "read"
	OpWrite   Op = "write"
	OpSync    Op = "sync"
	OpSyncDir Op = "syncdir"
	OpRename  Op = "rename"
	OpRemove  Op = "remove"
	OpReadDir Op = "readdir"
	OpStat    Op = "stat"
)

// Fault describes one injected failure.
type Fault struct {
	// Op is the operation to fail.
	Op Op
	// Path, when non-empty, restricts the fault to paths containing it.
	Path string
	// Nth fires the fault on the Nth matching operation (1-based);
	// 0 behaves as 1.
	Nth int
	// Err is returned by the failed operation; nil means ErrInjected.
	Err error
	// TearBytes, for OpWrite, writes only that many bytes of the failing
	// write through to the underlying file before returning the error —
	// a torn write, as a power cut mid-write produces.
	TearBytes int
	// Persistent keeps the fault firing on every matching operation from
	// the Nth onward, instead of only once.
	Persistent bool

	remaining int
}

// FaultFS wraps an FS and fails operations according to injected faults.
// It is safe for concurrent use.
type FaultFS struct {
	fsys     FS
	mu       sync.Mutex
	faults   []*Fault
	injected atomic.Int64
}

// NewFault wraps fsys with an empty fault set.
func NewFault(fsys FS) *FaultFS { return &FaultFS{fsys: fsys} }

// Inject adds a fault. The same Fault value must not be injected twice.
func (f *FaultFS) Inject(fl *Fault) {
	f.mu.Lock()
	fl.remaining = fl.Nth
	if fl.remaining <= 0 {
		fl.remaining = 1
	}
	f.faults = append(f.faults, fl)
	f.mu.Unlock()
}

// Clear removes all pending faults.
func (f *FaultFS) Clear() {
	f.mu.Lock()
	f.faults = nil
	f.mu.Unlock()
}

// Injected reports how many faults have fired.
func (f *FaultFS) Injected() int64 { return f.injected.Load() }

// check returns the firing fault for (op, path), or nil.
func (f *FaultFS) check(op Op, path string) *Fault {
	f.mu.Lock()
	defer f.mu.Unlock()
	for i, fl := range f.faults {
		if fl.Op != op {
			continue
		}
		if fl.Path != "" && !strings.Contains(path, fl.Path) {
			continue
		}
		fl.remaining--
		if fl.remaining > 0 {
			continue
		}
		if fl.Persistent {
			fl.remaining = 0 // stay at the firing point
		} else {
			f.faults = append(f.faults[:i], f.faults[i+1:]...)
		}
		f.injected.Add(1)
		return fl
	}
	return nil
}

func (fl *Fault) error() error {
	if fl.Err != nil {
		return fl.Err
	}
	return ErrInjected
}

// Create implements FS.
func (f *FaultFS) Create(name string) (File, error) {
	if fl := f.check(OpCreate, name); fl != nil {
		return nil, fl.error()
	}
	file, err := f.fsys.Create(name)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, name: name, File: file}, nil
}

// Open implements FS.
func (f *FaultFS) Open(name string) (File, error) {
	if fl := f.check(OpOpen, name); fl != nil {
		return nil, fl.error()
	}
	file, err := f.fsys.Open(name)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, name: name, File: file}, nil
}

// Rename implements FS.
func (f *FaultFS) Rename(oldname, newname string) error {
	if fl := f.check(OpRename, newname); fl != nil {
		return fl.error()
	}
	return f.fsys.Rename(oldname, newname)
}

// Remove implements FS.
func (f *FaultFS) Remove(name string) error {
	if fl := f.check(OpRemove, name); fl != nil {
		return fl.error()
	}
	return f.fsys.Remove(name)
}

// RemoveAll implements FS.
func (f *FaultFS) RemoveAll(path string) error { return f.fsys.RemoveAll(path) }

// MkdirAll implements FS.
func (f *FaultFS) MkdirAll(path string) error { return f.fsys.MkdirAll(path) }

// ReadDir implements FS.
func (f *FaultFS) ReadDir(name string) ([]fs.DirEntry, error) {
	if fl := f.check(OpReadDir, name); fl != nil {
		return nil, fl.error()
	}
	return f.fsys.ReadDir(name)
}

// Stat implements FS.
func (f *FaultFS) Stat(name string) (fs.FileInfo, error) {
	if fl := f.check(OpStat, name); fl != nil {
		return nil, fl.error()
	}
	return f.fsys.Stat(name)
}

// SyncDir implements FS.
func (f *FaultFS) SyncDir(name string) error {
	if fl := f.check(OpSyncDir, name); fl != nil {
		return fl.error()
	}
	return f.fsys.SyncDir(name)
}

// faultFile applies read/write/sync faults by the opening path.
type faultFile struct {
	fs   *FaultFS
	name string
	File
}

func (f *faultFile) Write(p []byte) (int, error) {
	if fl := f.fs.check(OpWrite, f.name); fl != nil {
		n := 0
		if fl.TearBytes > 0 {
			tear := fl.TearBytes
			if tear > len(p) {
				tear = len(p)
			}
			n, _ = f.File.Write(p[:tear])
		}
		return n, fl.error()
	}
	return f.File.Write(p)
}

func (f *faultFile) ReadAt(p []byte, off int64) (int, error) {
	if fl := f.fs.check(OpRead, f.name); fl != nil {
		return 0, fl.error()
	}
	return f.File.ReadAt(p, off)
}

func (f *faultFile) Sync() error {
	if fl := f.fs.check(OpSync, f.name); fl != nil {
		return fl.error()
	}
	return f.File.Sync()
}
