package vfs

import (
	"time"
)

// LatencyFS wraps an FS, delaying every ReadAt by a fixed amount. It
// models device read latency (a seek-dominated spinning disk, a network
// volume) on hosts whose page cache makes real reads near-instant, so the
// read-path benchmarks measure latency hiding — parallel opens, block
// prefetch — rather than this machine's SSD. Writes are not delayed; the
// read path is what the parallel-query benchmarks exercise.
type LatencyFS struct {
	FS
	// ReadDelay is added to every File.ReadAt call.
	ReadDelay time.Duration
}

// Open implements FS, wrapping the file so its reads are delayed.
func (l LatencyFS) Open(name string) (File, error) {
	f, err := l.FS.Open(name)
	if err != nil {
		return nil, err
	}
	return &latencyFile{File: f, delay: l.ReadDelay}, nil
}

type latencyFile struct {
	File
	delay time.Duration
}

func (f *latencyFile) ReadAt(p []byte, off int64) (int, error) {
	if f.delay > 0 {
		time.Sleep(f.delay)
	}
	return f.File.ReadAt(p, off)
}
