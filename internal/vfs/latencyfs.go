package vfs

import (
	"time"
)

// LatencyFS wraps an FS, delaying file I/O by fixed amounts. It models
// device latency (a seek-dominated spinning disk, a network volume) on
// hosts whose page cache makes real I/O near-instant, so benchmarks
// measure latency hiding — parallel opens, block prefetch, asynchronous
// flushing — rather than this machine's SSD.
type LatencyFS struct {
	FS
	// ReadDelay is added to every File.ReadAt call.
	ReadDelay time.Duration
	// WriteDelay is added to every File.Write call on files opened with
	// Create (modeling per-operation device write latency on the flush
	// path).
	WriteDelay time.Duration
	// WriteBytesPerSec, when non-zero, additionally delays each write in
	// proportion to its size — the sequential-transfer half of the §5.1.1
	// disk model, which is what makes a 16 MB flush cost real wall time.
	WriteBytesPerSec int64
}

// Open implements FS, wrapping the file so its reads are delayed.
func (l LatencyFS) Open(name string) (File, error) {
	f, err := l.FS.Open(name)
	if err != nil {
		return nil, err
	}
	return &latencyFile{File: f, readDelay: l.ReadDelay}, nil
}

// Create implements FS, wrapping the file so its writes are delayed.
func (l LatencyFS) Create(name string) (File, error) {
	f, err := l.FS.Create(name)
	if err != nil {
		return nil, err
	}
	return &latencyFile{File: f, writeDelay: l.WriteDelay, writeBps: l.WriteBytesPerSec}, nil
}

type latencyFile struct {
	File
	readDelay  time.Duration
	writeDelay time.Duration
	writeBps   int64
}

func (f *latencyFile) ReadAt(p []byte, off int64) (int, error) {
	if f.readDelay > 0 {
		time.Sleep(f.readDelay)
	}
	return f.File.ReadAt(p, off)
}

func (f *latencyFile) Write(p []byte) (int, error) {
	d := f.writeDelay
	if f.writeBps > 0 {
		d += time.Duration(int64(len(p)) * int64(time.Second) / f.writeBps)
	}
	if d > 0 {
		time.Sleep(d)
	}
	return f.File.Write(p)
}
