package vfs

import (
	"fmt"
	"io"
	"io/fs"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"
)

// MemFS is an in-memory FS with power-loss semantics, for the
// crash-consistency harness. It tracks, for every file, which bytes have
// been fsynced, and for every directory, which entry operations (create,
// rename, remove) have been made durable by a SyncDir. CrashClone returns
// the state an ext4-like disk could present after a power cut at this
// instant under the strictest model: un-synced file data is dropped and
// un-synced directory operations are rolled back.
//
// A BarrierHook, when set, is invoked after every durability barrier
// (File.Sync, SyncDir, Rename); the harness uses it to snapshot a crash
// state at each boundary of a running workload.
type MemFS struct {
	mu    sync.Mutex
	nodes map[string]*memNode // path -> file
	dirs  map[string]bool     // existing directories
	undo  []undoRec           // dir ops since the covering SyncDir, oldest first

	hook func(op, path string) // called outside mu after barriers
}

// memNode holds a file's volatile contents and its last-synced snapshot.
type memNode struct {
	data   []byte
	synced []byte
	mtime  time.Time
}

// undoRec reverses one directory-level operation; dirs names the parent
// directories whose SyncDir must all happen before the op is durable.
type undoRec struct {
	dirs []string
	fn   func(nodes map[string]*memNode)
}

// NewMem returns an empty MemFS with a root directory.
func NewMem() *MemFS {
	return &MemFS{
		nodes: map[string]*memNode{},
		dirs:  map[string]bool{"/": true, ".": true},
	}
}

// SetBarrierHook installs fn, called (outside the FS lock) after every
// durability barrier: File.Sync, SyncDir, and Rename. op is one of "sync",
// "syncdir", "rename".
func (m *MemFS) SetBarrierHook(fn func(op, path string)) {
	m.mu.Lock()
	m.hook = fn
	m.mu.Unlock()
}

func (m *MemFS) fire(op, path string) {
	m.mu.Lock()
	fn := m.hook
	m.mu.Unlock()
	if fn != nil {
		fn(op, path)
	}
}

func clean(p string) string { return filepath.Clean(p) }

// Create implements FS.
func (m *MemFS) Create(name string) (File, error) {
	name = clean(name)
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.dirs[filepath.Dir(name)] {
		return nil, &fs.PathError{Op: "create", Path: name, Err: fs.ErrNotExist}
	}
	prev, existed := m.nodes[name]
	n := &memNode{mtime: time.Now()}
	m.nodes[name] = n
	m.undo = append(m.undo, undoRec{
		dirs: []string{filepath.Dir(name)},
		fn: func(nodes map[string]*memNode) {
			if existed {
				nodes[name] = prev
			} else {
				delete(nodes, name)
			}
		},
	})
	return &memWriteFile{fs: m, name: name, node: n}, nil
}

// Open implements FS.
func (m *MemFS) Open(name string) (File, error) {
	name = clean(name)
	m.mu.Lock()
	defer m.mu.Unlock()
	n, ok := m.nodes[name]
	if !ok {
		return nil, &fs.PathError{Op: "open", Path: name, Err: fs.ErrNotExist}
	}
	return &memReadFile{fs: m, name: name, node: n}, nil
}

// Rename implements FS.
func (m *MemFS) Rename(oldname, newname string) error {
	oldname, newname = clean(oldname), clean(newname)
	m.mu.Lock()
	n, ok := m.nodes[oldname]
	if !ok {
		m.mu.Unlock()
		return &fs.PathError{Op: "rename", Path: oldname, Err: fs.ErrNotExist}
	}
	overwritten, hadTarget := m.nodes[newname]
	delete(m.nodes, oldname)
	m.nodes[newname] = n
	m.undo = append(m.undo, undoRec{
		dirs: dedupDirs(filepath.Dir(oldname), filepath.Dir(newname)),
		fn: func(nodes map[string]*memNode) {
			nodes[oldname] = n
			if hadTarget {
				nodes[newname] = overwritten
			} else {
				delete(nodes, newname)
			}
		},
	})
	m.mu.Unlock()
	m.fire("rename", newname)
	return nil
}

func dedupDirs(a, b string) []string {
	if a == b {
		return []string{a}
	}
	return []string{a, b}
}

// Remove implements FS.
func (m *MemFS) Remove(name string) error {
	name = clean(name)
	m.mu.Lock()
	defer m.mu.Unlock()
	n, ok := m.nodes[name]
	if !ok {
		return &fs.PathError{Op: "remove", Path: name, Err: fs.ErrNotExist}
	}
	delete(m.nodes, name)
	m.undo = append(m.undo, undoRec{
		dirs: []string{filepath.Dir(name)},
		fn:   func(nodes map[string]*memNode) { nodes[name] = n },
	})
	return nil
}

// RemoveAll implements FS. Directory removal is treated as immediately
// durable; the engine only uses it for DropTable, which the crash harness
// does not exercise.
func (m *MemFS) RemoveAll(path string) error {
	path = clean(path)
	m.mu.Lock()
	defer m.mu.Unlock()
	prefix := path + string(filepath.Separator)
	for p := range m.nodes {
		if p == path || strings.HasPrefix(p, prefix) {
			delete(m.nodes, p)
		}
	}
	for d := range m.dirs {
		if d == path || strings.HasPrefix(d, prefix) {
			delete(m.dirs, d)
		}
	}
	// Drop undo records under the removed tree: resurrecting files into a
	// deleted directory would be nonsense.
	kept := m.undo[:0]
	for _, u := range m.undo {
		under := false
		for _, d := range u.dirs {
			if d == path || strings.HasPrefix(d, prefix) {
				under = true
			}
		}
		if !under {
			kept = append(kept, u)
		}
	}
	m.undo = kept
	return nil
}

// MkdirAll implements FS. Directory creation is treated as immediately
// durable: the engine creates a table's directory once, before any data it
// could lose exists.
func (m *MemFS) MkdirAll(path string) error {
	path = clean(path)
	m.mu.Lock()
	defer m.mu.Unlock()
	for p := path; ; p = filepath.Dir(p) {
		m.dirs[p] = true
		if p == filepath.Dir(p) {
			break
		}
	}
	return nil
}

// ReadDir implements FS.
func (m *MemFS) ReadDir(name string) ([]fs.DirEntry, error) {
	name = clean(name)
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.dirs[name] {
		return nil, &fs.PathError{Op: "readdir", Path: name, Err: fs.ErrNotExist}
	}
	seen := map[string]fs.DirEntry{}
	prefix := name + string(filepath.Separator)
	if name == "/" {
		prefix = "/"
	}
	for p, n := range m.nodes {
		if !strings.HasPrefix(p, prefix) {
			continue
		}
		rest := p[len(prefix):]
		if i := strings.IndexByte(rest, filepath.Separator); i >= 0 {
			continue // file in a subdirectory
		}
		seen[rest] = memDirEntry{name: rest, info: memInfo{name: rest, size: int64(len(n.data)), mtime: n.mtime}}
	}
	for d := range m.dirs {
		if !strings.HasPrefix(d, prefix) || d == name {
			continue
		}
		rest := d[len(prefix):]
		if i := strings.IndexByte(rest, filepath.Separator); i >= 0 {
			rest = rest[:i]
		}
		seen[rest] = memDirEntry{name: rest, info: memInfo{name: rest, dir: true}}
	}
	out := make([]fs.DirEntry, 0, len(seen))
	for _, e := range seen {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name() < out[j].Name() })
	return out, nil
}

// Stat implements FS.
func (m *MemFS) Stat(name string) (fs.FileInfo, error) {
	name = clean(name)
	m.mu.Lock()
	defer m.mu.Unlock()
	if n, ok := m.nodes[name]; ok {
		return memInfo{name: filepath.Base(name), size: int64(len(n.data)), mtime: n.mtime}, nil
	}
	if m.dirs[name] {
		return memInfo{name: filepath.Base(name), dir: true}, nil
	}
	return nil, &fs.PathError{Op: "stat", Path: name, Err: fs.ErrNotExist}
}

// SyncDir implements FS: directory operations whose parents have all been
// synced become durable (their undo records are dropped).
func (m *MemFS) SyncDir(name string) error {
	name = clean(name)
	m.mu.Lock()
	if !m.dirs[name] {
		m.mu.Unlock()
		return &fs.PathError{Op: "syncdir", Path: name, Err: fs.ErrNotExist}
	}
	kept := m.undo[:0]
	for _, u := range m.undo {
		dirs := u.dirs[:0]
		for _, d := range u.dirs {
			if d != name {
				dirs = append(dirs, d)
			}
		}
		u.dirs = dirs
		if len(u.dirs) > 0 {
			kept = append(kept, u)
		}
	}
	m.undo = kept
	m.mu.Unlock()
	m.fire("syncdir", name)
	return nil
}

// CrashClone returns an independent MemFS holding the state a disk could
// present after a power cut now: every un-synced directory operation rolled
// back (newest first), then every file truncated to its last-synced
// contents. The original is unaffected, and the clone carries no hook.
func (m *MemFS) CrashClone() *MemFS {
	m.mu.Lock()
	defer m.mu.Unlock()
	view := make(map[string]*memNode, len(m.nodes))
	for p, n := range m.nodes {
		view[p] = n
	}
	for i := len(m.undo) - 1; i >= 0; i-- {
		m.undo[i].fn(view)
	}
	out := &MemFS{
		nodes: make(map[string]*memNode, len(view)),
		dirs:  make(map[string]bool, len(m.dirs)),
	}
	for d := range m.dirs {
		out.dirs[d] = true
	}
	for p, n := range view {
		// Only the synced bytes survive; the entry itself survived the
		// rollback above, so it was durable.
		out.nodes[p] = &memNode{
			data:   append([]byte(nil), n.synced...),
			synced: append([]byte(nil), n.synced...),
			mtime:  n.mtime,
		}
	}
	return out
}

// FileCount reports the number of files (diagnostics for tests).
func (m *MemFS) FileCount() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.nodes)
}

// --- file handles ---

// memWriteFile appends sequentially to its node.
type memWriteFile struct {
	fs     *MemFS
	name   string
	node   *memNode
	closed bool
}

func (f *memWriteFile) Write(p []byte) (int, error) {
	f.fs.mu.Lock()
	if f.closed {
		f.fs.mu.Unlock()
		return 0, fs.ErrClosed
	}
	f.node.data = append(f.node.data, p...)
	f.node.mtime = time.Now()
	f.fs.mu.Unlock()
	return len(p), nil
}

func (f *memWriteFile) ReadAt(p []byte, off int64) (int, error) {
	return readAtNode(f.fs, f.node, p, off)
}

func (f *memWriteFile) Sync() error {
	f.fs.mu.Lock()
	if f.closed {
		f.fs.mu.Unlock()
		return fs.ErrClosed
	}
	f.node.synced = append(f.node.synced[:0], f.node.data...)
	f.fs.mu.Unlock()
	f.fs.fire("sync", f.name)
	return nil
}

func (f *memWriteFile) Close() error {
	f.fs.mu.Lock()
	f.closed = true
	f.fs.mu.Unlock()
	return nil
}

func (f *memWriteFile) Stat() (fs.FileInfo, error) {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	return memInfo{name: filepath.Base(f.name), size: int64(len(f.node.data)), mtime: f.node.mtime}, nil
}

// memReadFile reads a node; it keeps working after the name is renamed or
// removed, like a POSIX file handle.
type memReadFile struct {
	fs   *MemFS
	name string
	node *memNode
}

func (f *memReadFile) Write([]byte) (int, error) {
	return 0, &fs.PathError{Op: "write", Path: f.name, Err: fs.ErrPermission}
}

func (f *memReadFile) ReadAt(p []byte, off int64) (int, error) {
	return readAtNode(f.fs, f.node, p, off)
}

func (f *memReadFile) Sync() error  { return nil }
func (f *memReadFile) Close() error { return nil }

func (f *memReadFile) Stat() (fs.FileInfo, error) {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	return memInfo{name: filepath.Base(f.name), size: int64(len(f.node.data)), mtime: f.node.mtime}, nil
}

func readAtNode(m *MemFS, n *memNode, p []byte, off int64) (int, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if off < 0 {
		return 0, fmt.Errorf("vfs: negative offset %d", off)
	}
	if off >= int64(len(n.data)) {
		return 0, io.EOF
	}
	c := copy(p, n.data[off:])
	if c < len(p) {
		return c, io.EOF
	}
	return c, nil
}

// --- fs.FileInfo / fs.DirEntry ---

type memInfo struct {
	name  string
	size  int64
	dir   bool
	mtime time.Time
}

func (i memInfo) Name() string { return i.name }
func (i memInfo) Size() int64  { return i.size }
func (i memInfo) Mode() fs.FileMode {
	if i.dir {
		return fs.ModeDir | 0o755
	}
	return 0o644
}
func (i memInfo) ModTime() time.Time { return i.mtime }
func (i memInfo) IsDir() bool        { return i.dir }
func (i memInfo) Sys() any           { return nil }

type memDirEntry struct {
	name string
	info memInfo
}

func (e memDirEntry) Name() string               { return e.name }
func (e memDirEntry) IsDir() bool                { return e.info.dir }
func (e memDirEntry) Type() fs.FileMode          { return e.info.Mode().Type() }
func (e memDirEntry) Info() (fs.FileInfo, error) { return e.info, nil }
