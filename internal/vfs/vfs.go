// Package vfs abstracts the filesystem operations LittleTable performs, so
// the storage engine can run against the real OS filesystem in production
// and against fault-injecting or crash-simulating implementations in tests.
//
// The interface is deliberately small: the engine only creates files, writes
// them sequentially, reads them randomly, renames them into place, and lists
// or removes directory entries. One operation has no os.* equivalent:
// SyncDir, which fsyncs a directory itself. On ext4 (and most journaling
// filesystems) a rename is not durable until the parent directory's metadata
// reaches disk, so every commit-by-rename in the engine is followed by a
// SyncDir when durability is requested.
package vfs

import (
	"errors"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"syscall"
)

// File is an open file handle. Tablet writers use Write/Sync/Close; tablet
// readers use ReadAt/Stat/Close. Implementations must allow concurrent
// ReadAt calls.
type File interface {
	io.Writer
	io.ReaderAt
	io.Closer
	// Sync flushes the file's data to stable storage.
	Sync() error
	// Stat returns file metadata (the engine only uses the size).
	Stat() (fs.FileInfo, error)
}

// FS is the filesystem surface the engine runs on.
type FS interface {
	// Create opens a new file for writing, truncating any existing one.
	Create(name string) (File, error)
	// Open opens an existing file for reading.
	Open(name string) (File, error)
	// Rename atomically replaces newname with oldname. Durability requires
	// a subsequent SyncDir on the parent directory.
	Rename(oldname, newname string) error
	// Remove deletes a file.
	Remove(name string) error
	// RemoveAll deletes a directory tree.
	RemoveAll(path string) error
	// MkdirAll creates a directory and any missing parents.
	MkdirAll(path string) error
	// ReadDir lists a directory.
	ReadDir(name string) ([]fs.DirEntry, error)
	// Stat returns metadata for the named file.
	Stat(name string) (fs.FileInfo, error)
	// SyncDir fsyncs the directory itself, making renames, creates, and
	// removes within it durable.
	SyncDir(name string) error
}

// OsFS is the passthrough implementation over the real filesystem.
type OsFS struct{}

// Create implements FS.
func (OsFS) Create(name string) (File, error) {
	return os.OpenFile(name, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
}

// Open implements FS.
func (OsFS) Open(name string) (File, error) { return os.Open(name) }

// Rename implements FS.
func (OsFS) Rename(oldname, newname string) error { return os.Rename(oldname, newname) }

// Remove implements FS.
func (OsFS) Remove(name string) error { return os.Remove(name) }

// RemoveAll implements FS.
func (OsFS) RemoveAll(path string) error { return os.RemoveAll(path) }

// MkdirAll implements FS.
func (OsFS) MkdirAll(path string) error { return os.MkdirAll(path, 0o755) }

// ReadDir implements FS.
func (OsFS) ReadDir(name string) ([]fs.DirEntry, error) { return os.ReadDir(name) }

// Stat implements FS.
func (OsFS) Stat(name string) (fs.FileInfo, error) { return os.Stat(name) }

// SyncDir implements FS: open the directory and fsync it. Filesystems that
// do not support fsync on directories report fs.ErrInvalid, which is
// ignored — there is nothing more a userspace program can do there.
func (OsFS) SyncDir(name string) error {
	d, err := os.Open(name)
	if err != nil {
		return err
	}
	err = d.Sync()
	d.Close()
	if err != nil && (errors.Is(err, fs.ErrInvalid) || errors.Is(err, syscall.EINVAL) || errors.Is(err, syscall.ENOTSUP)) {
		return nil
	}
	return err
}

// ReadFile reads the whole named file through fsys.
func ReadFile(fsys FS, name string) ([]byte, error) {
	f, err := fsys.Open(name)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	data := make([]byte, st.Size())
	if _, err := io.ReadFull(io.NewSectionReader(f, 0, st.Size()), data); err != nil {
		return nil, err
	}
	return data, nil
}

// DirOf returns the parent directory of path, for SyncDir after a rename.
func DirOf(path string) string { return filepath.Dir(path) }
