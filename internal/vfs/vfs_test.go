package vfs

import (
	"errors"
	"io/fs"
	"testing"
)

func writeAll(t *testing.T, fsys FS, name string, data []byte, sync bool) {
	t.Helper()
	f, err := fsys.Create(name)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(data); err != nil {
		t.Fatal(err)
	}
	if sync {
		if err := f.Sync(); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestMemFSBasics(t *testing.T) {
	m := NewMem()
	if err := m.MkdirAll("/t/usage"); err != nil {
		t.Fatal(err)
	}
	writeAll(t, m, "/t/usage/a.tab", []byte("hello"), true)
	data, err := ReadFile(m, "/t/usage/a.tab")
	if err != nil || string(data) != "hello" {
		t.Fatalf("read back %q, %v", data, err)
	}
	if err := m.Rename("/t/usage/a.tab", "/t/usage/b.tab"); err != nil {
		t.Fatal(err)
	}
	ents, err := m.ReadDir("/t/usage")
	if err != nil || len(ents) != 1 || ents[0].Name() != "b.tab" {
		t.Fatalf("readdir: %v, %v", ents, err)
	}
	st, err := m.Stat("/t/usage/b.tab")
	if err != nil || st.Size() != 5 {
		t.Fatalf("stat: %v, %v", st, err)
	}
	if err := m.Remove("/t/usage/b.tab"); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Open("/t/usage/b.tab"); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("open removed: %v", err)
	}
}

// A created-and-synced file whose directory entry was never SyncDir'd must
// vanish in a crash; after SyncDir it must survive with synced bytes only.
func TestMemFSCrashDropsUnsyncedEntries(t *testing.T) {
	m := NewMem()
	if err := m.MkdirAll("/d"); err != nil {
		t.Fatal(err)
	}
	writeAll(t, m, "/d/file", []byte("abc"), true)

	crash := m.CrashClone()
	if _, err := crash.Open("/d/file"); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("entry survived crash without dir sync: %v", err)
	}

	if err := m.SyncDir("/d"); err != nil {
		t.Fatal(err)
	}
	// Append more bytes, unsynced.
	f, err := m.Create("/d/other")
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte("volatile"))
	f.Close()

	crash = m.CrashClone()
	data, err := ReadFile(crash, "/d/file")
	if err != nil || string(data) != "abc" {
		t.Fatalf("durable file lost: %q, %v", data, err)
	}
	if _, err := crash.Open("/d/other"); !errors.Is(err, fs.ErrNotExist) {
		t.Fatal("unsynced create survived crash")
	}
}

// A crash between rename and SyncDir rolls the rename back; after SyncDir it
// sticks. An overwritten target must be restored by the rollback.
func TestMemFSCrashRollsBackRename(t *testing.T) {
	m := NewMem()
	if err := m.MkdirAll("/d"); err != nil {
		t.Fatal(err)
	}
	writeAll(t, m, "/d/target", []byte("old"), true)
	writeAll(t, m, "/d/tmp", []byte("new"), true)
	if err := m.SyncDir("/d"); err != nil {
		t.Fatal(err)
	}
	if err := m.Rename("/d/tmp", "/d/target"); err != nil {
		t.Fatal(err)
	}

	crash := m.CrashClone()
	data, err := ReadFile(crash, "/d/target")
	if err != nil || string(data) != "old" {
		t.Fatalf("target after crash = %q, %v; want pre-rename contents", data, err)
	}
	if d2, err := ReadFile(crash, "/d/tmp"); err != nil || string(d2) != "new" {
		t.Fatalf("tmp after crash = %q, %v", d2, err)
	}

	if err := m.SyncDir("/d"); err != nil {
		t.Fatal(err)
	}
	crash = m.CrashClone()
	data, err = ReadFile(crash, "/d/target")
	if err != nil || string(data) != "new" {
		t.Fatalf("target after synced rename = %q, %v", data, err)
	}
	if _, err := crash.Open("/d/tmp"); !errors.Is(err, fs.ErrNotExist) {
		t.Fatal("tmp survived durable rename")
	}
}

// Unsynced file data is dropped at a crash even when the entry is durable.
func TestMemFSCrashTruncatesToSyncedPrefix(t *testing.T) {
	m := NewMem()
	m.MkdirAll("/d")
	f, err := m.Create("/d/f")
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte("durable-"))
	f.Sync()
	f.Write([]byte("volatile"))
	f.Close()
	m.SyncDir("/d")

	crash := m.CrashClone()
	data, err := ReadFile(crash, "/d/f")
	if err != nil || string(data) != "durable-" {
		t.Fatalf("crash contents = %q, %v; want synced prefix", data, err)
	}
	// The original is untouched.
	data, _ = ReadFile(m, "/d/f")
	if string(data) != "durable-volatile" {
		t.Fatalf("original mutated: %q", data)
	}
}

func TestMemFSBarrierHook(t *testing.T) {
	m := NewMem()
	m.MkdirAll("/d")
	var ops []string
	m.SetBarrierHook(func(op, path string) { ops = append(ops, op) })
	writeAll(t, m, "/d/f", []byte("x"), true) // sync
	m.Rename("/d/f", "/d/g")                  // rename
	m.SyncDir("/d")                           // syncdir
	want := []string{"sync", "rename", "syncdir"}
	if len(ops) != len(want) {
		t.Fatalf("ops = %v, want %v", ops, want)
	}
	for i := range want {
		if ops[i] != want[i] {
			t.Fatalf("ops = %v, want %v", ops, want)
		}
	}
}

func TestFaultFSNthAndPersistent(t *testing.T) {
	m := NewMem()
	m.MkdirAll("/d")
	ff := NewFault(m)
	boom := errors.New("boom")
	ff.Inject(&Fault{Op: OpCreate, Path: ".tab", Nth: 2, Err: boom})

	if _, err := ff.Create("/d/a.tab"); err != nil {
		t.Fatalf("first create should pass: %v", err)
	}
	if _, err := ff.Create("/d/b.tab"); !errors.Is(err, boom) {
		t.Fatalf("second create should fail: %v", err)
	}
	if _, err := ff.Create("/d/c.tab"); err != nil {
		t.Fatalf("third create should pass again: %v", err)
	}
	if ff.Injected() != 1 {
		t.Fatalf("injected = %d", ff.Injected())
	}

	ff.Inject(&Fault{Op: OpSync, Persistent: true})
	f, _ := ff.Create("/d/d.tab")
	for i := 0; i < 3; i++ {
		if err := f.Sync(); !errors.Is(err, ErrInjected) {
			t.Fatalf("sync %d: %v", i, err)
		}
	}
}

func TestFaultFSTornWrite(t *testing.T) {
	m := NewMem()
	m.MkdirAll("/d")
	ff := NewFault(m)
	ff.Inject(&Fault{Op: OpWrite, TearBytes: 3})
	f, err := ff.Create("/d/f")
	if err != nil {
		t.Fatal(err)
	}
	n, err := f.Write([]byte("abcdef"))
	if n != 3 || !errors.Is(err, ErrInjected) {
		t.Fatalf("torn write: n=%d err=%v", n, err)
	}
	f.Close()
	data, _ := ReadFile(m, "/d/f")
	if string(data) != "abc" {
		t.Fatalf("underlying contents %q, want torn prefix", data)
	}
}

func TestOsFSSyncDir(t *testing.T) {
	dir := t.TempDir()
	var fsys OsFS
	writeAll(t, fsys, dir+"/a", []byte("x"), true)
	if err := fsys.Rename(dir+"/a", dir+"/b"); err != nil {
		t.Fatal(err)
	}
	if err := fsys.SyncDir(dir); err != nil {
		t.Fatalf("SyncDir: %v", err)
	}
	data, err := ReadFile(fsys, dir+"/b")
	if err != nil || string(data) != "x" {
		t.Fatalf("read back: %q, %v", data, err)
	}
}
