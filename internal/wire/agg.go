package wire

import (
	"math"

	"littletable/internal/agg"
)

// Aggregation messages (ROADMAP item 3).
//
// An AggQuery is scatter-shaped: like ScatterQuery it leads with a
// length-prefixed table-name prefix (PeekTable-compatible) and applies
// to every matching table. The response carries mergeable partial
// aggregate states, never raw rows: a shard folds its local tables'
// rows into per-group states, the router merges shard partials
// group-wise, and the client finalizes (avg = sum/count, quantiles
// from the sketch). Bytes on the wire scale with the number of groups,
// not the number of rows — the economics the dashboard workload needs.

// AggQuery asks for one streaming aggregation evaluated over every
// table whose name starts with Prefix, within [MinTs, MaxTs].
type AggQuery struct {
	Prefix string
	Spec   agg.Spec
	// MinTs and MaxTs bound row timestamps, inclusive. Leaving both
	// zero means all time, not the single microsecond 0.
	MinTs, MaxTs int64
	// MaxGroups caps the total groups a server accumulates (0 = server
	// default); hitting it sets Truncated in the result.
	MaxGroups uint32
	// MaxTables caps how many matching tables are scanned (0 = no cap),
	// taken in sorted name order so the cap is deterministic.
	MaxTables uint32
	// WantPartials asks for the per-table partial sections alongside the
	// merged groups. The router sets it on shard fan-out — it needs
	// table granularity to dedup a mid-migration table — while a
	// dashboard client leaves it unset and pays for the merged groups
	// only.
	WantPartials bool
}

func encodeSpec(b *Buf, s agg.Spec) {
	b.I64(s.BucketWidth)
	b.U32(uint32(s.GroupCols))
	b.U32(uint32(len(s.Aggs)))
	for _, a := range s.Aggs {
		b.U8(uint8(a.Func))
		b.String(a.Col)
		b.U64(math.Float64bits(a.Q))
	}
}

func decodeSpec(d *Dec) agg.Spec {
	s := agg.Spec{BucketWidth: d.I64(), GroupCols: int(d.U32())}
	n := int(d.U32())
	// Each aggregate encodes to ≥ 13 bytes; reject counts the payload
	// cannot hold before allocating proportional to them.
	if d.Err != nil || n > len(d.B) {
		d.fail("agg spec count")
		return s
	}
	for i := 0; i < n && d.Err == nil; i++ {
		a := agg.Agg{Func: agg.Func(d.U8()), Col: d.String()}
		a.Q = math.Float64frombits(d.U64())
		if d.Err == nil && !a.Func.Valid() {
			d.fail("agg func")
			return s
		}
		s.Aggs = append(s.Aggs, a)
	}
	return s
}

// Encode serializes the message payload.
func (m *AggQuery) Encode() []byte {
	var b Buf
	b.String(m.Prefix)
	encodeSpec(&b, m.Spec)
	b.I64(m.MinTs)
	b.I64(m.MaxTs)
	b.U32(m.MaxGroups)
	b.U32(m.MaxTables)
	b.Bool(m.WantPartials)
	return b.B
}

// DecodeAggQuery parses an AggQuery payload.
func DecodeAggQuery(p []byte) (*AggQuery, error) {
	d := Dec{B: p}
	m := &AggQuery{Prefix: d.String()}
	m.Spec = decodeSpec(&d)
	m.MinTs = d.I64()
	m.MaxTs = d.I64()
	m.MaxGroups = d.U32()
	m.MaxTables = d.U32()
	m.WantPartials = d.Bool()
	return m, d.Done()
}

// AggTablePartial is one table's partial aggregate. Per-table
// granularity is what lets the router dedup a mid-migration table that
// two shards both report — a combined aggregate could not subtract the
// duplicate's contribution.
type AggTablePartial struct {
	Table  string
	Groups []agg.Group
}

// AggResult answers an AggQuery: per-table partials in sorted
// table-name order plus their cross-table merge, both carrying
// mergeable states (finalize with agg.Finalize).
type AggResult struct {
	Spec agg.Spec
	// Tables holds one partial per scanned table, sorted by name.
	Tables []AggTablePartial
	// Groups is the cross-table merge of Tables' partials, sorted by
	// (bucket, key) — what a dashboard client reads directly.
	Groups []agg.Group
	// RowsFolded counts source rows folded (across all tables), the
	// bytes-not-shipped denominator.
	RowsFolded int64
	// Truncated reports that MaxTables or MaxGroups cut coverage short.
	Truncated bool
}

func encodeGroups(b *Buf, spec agg.Spec, groups []agg.Group) {
	b.U32(uint32(len(groups)))
	for gi := range groups {
		g := &groups[gi]
		b.I64(g.Bucket)
		b.Values(g.Key)
		for i, a := range spec.Aggs {
			encodeState(b, a.Func, &g.States[i])
		}
	}
}

func encodeState(b *Buf, f agg.Func, st *agg.State) {
	b.I64(st.N)
	switch f {
	case agg.Count:
	case agg.Sum, agg.Avg:
		b.Bool(st.IsFloat)
		b.I64(st.IntSum)
		b.Bool(st.Saturated)
		b.U64(math.Float64bits(st.FloatSum))
	case agg.Min, agg.Max:
		b.Bool(st.HasMM)
		if st.HasMM {
			b.Value(st.MM)
		}
	case agg.Quantile:
		var sk []byte
		if st.Sketch != nil {
			sk = st.Sketch.AppendBinary(nil)
		}
		b.Bytes(sk)
	}
}

func decodeGroups(d *Dec, spec agg.Spec) []agg.Group {
	n := int(d.U32())
	// A group encodes to ≥ 12 bytes (bucket + key count) plus one state
	// per aggregate; bound the allocation by the remaining payload.
	if d.Err != nil || n > len(d.B) {
		d.fail("agg groups count")
		return nil
	}
	var out []agg.Group
	for i := 0; i < n && d.Err == nil; i++ {
		g := agg.Group{Bucket: d.I64(), Key: d.Values()}
		g.States = make([]agg.State, len(spec.Aggs))
		for j, a := range spec.Aggs {
			decodeState(d, a.Func, &g.States[j])
		}
		out = append(out, g)
	}
	return out
}

func decodeState(d *Dec, f agg.Func, st *agg.State) {
	st.N = d.I64()
	if d.Err == nil && st.N < 0 {
		d.fail("agg state count")
		return
	}
	switch f {
	case agg.Count:
	case agg.Sum, agg.Avg:
		st.IsFloat = d.Bool()
		st.IntSum = d.I64()
		st.Saturated = d.Bool()
		st.FloatSum = math.Float64frombits(d.U64())
	case agg.Min, agg.Max:
		st.HasMM = d.Bool()
		if st.HasMM {
			st.MM = d.Value()
		}
	case agg.Quantile:
		sk := d.Bytes()
		if d.Err != nil || len(sk) == 0 {
			return // a nil sketch encodes as empty bytes
		}
		s, err := agg.UnmarshalSketch(sk)
		if err != nil {
			d.Err = err
			return
		}
		st.Sketch = s
	}
}

// Encode serializes the message payload.
func (m *AggResult) Encode() []byte {
	var b Buf
	encodeSpec(&b, m.Spec)
	b.U32(uint32(len(m.Tables)))
	for i := range m.Tables {
		b.String(m.Tables[i].Table)
		encodeGroups(&b, m.Spec, m.Tables[i].Groups)
	}
	encodeGroups(&b, m.Spec, m.Groups)
	b.I64(m.RowsFolded)
	b.Bool(m.Truncated)
	return b.B
}

// DecodeAggResult parses an AggResult payload.
func DecodeAggResult(p []byte) (*AggResult, error) {
	d := Dec{B: p}
	m := &AggResult{Spec: decodeSpec(&d)}
	n := int(d.U32())
	if d.Err == nil && n > len(d.B) {
		d.fail("agg tables count")
	}
	for i := 0; i < n && d.Err == nil; i++ {
		t := AggTablePartial{Table: d.String()}
		t.Groups = decodeGroups(&d, m.Spec)
		m.Tables = append(m.Tables, t)
	}
	m.Groups = decodeGroups(&d, m.Spec)
	m.RowsFolded = d.I64()
	m.Truncated = d.Bool()
	return m, d.Done()
}
