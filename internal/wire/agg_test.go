package wire

import (
	"bytes"
	"math"
	"testing"

	"littletable/internal/agg"
	"littletable/internal/ltval"
)

func testAggSpec() agg.Spec {
	return agg.Spec{
		BucketWidth: 60_000_000,
		GroupCols:   2,
		Aggs: []agg.Agg{
			{Func: agg.Count},
			{Func: agg.Sum, Col: "bytes"},
			{Func: agg.Sum, Col: "rate"},
			{Func: agg.Min, Col: "rate"},
			{Func: agg.Max, Col: "bytes"},
			{Func: agg.Avg, Col: "rate"},
			{Func: agg.Quantile, Col: "rate", Q: 0.95},
		},
	}
}

// testAggResult builds a result exercising every state shape the encoder
// distinguishes: saturated and plain int sums, float sums (including a
// NaN from an all-NaN column), present and absent min/max, populated and
// nil sketches, and an empty group list for one table.
func testAggResult() *AggResult {
	spec := testAggSpec()
	sk := agg.NewSketch()
	for i := 1; i <= 100; i++ {
		sk.Add(float64(i) / 7)
	}
	mkGroup := func(bucket, n int64, saturated, hasMM bool, sketch *agg.Sketch) agg.Group {
		g := agg.Group{
			Bucket: bucket,
			Key:    []ltval.Value{ltval.NewInt64(n), ltval.NewInt64(n * 3)},
			States: make([]agg.State, len(spec.Aggs)),
		}
		g.States[0] = agg.State{N: n}
		g.States[1] = agg.State{N: n, IntSum: n * 100, Saturated: saturated}
		if saturated {
			g.States[1].IntSum = math.MaxInt64
		}
		g.States[2] = agg.State{N: n, IsFloat: true, FloatSum: float64(n) * 1.5}
		g.States[3] = agg.State{N: n, HasMM: hasMM}
		g.States[4] = agg.State{N: n, HasMM: hasMM}
		if hasMM {
			g.States[3].MM = ltval.NewDouble(-2.25)
			g.States[4].MM = ltval.NewInt64(1 << 40)
		}
		g.States[5] = agg.State{N: n, IsFloat: true, FloatSum: math.NaN()}
		g.States[6] = agg.State{N: n, Sketch: sketch}
		return g
	}
	groups := []agg.Group{
		mkGroup(0, 4, false, true, sk),
		mkGroup(60_000_000, 7, true, false, nil),
	}
	return &AggResult{
		Spec: spec,
		Tables: []AggTablePartial{
			{Table: "usage_a", Groups: groups},
			{Table: "usage_b", Groups: nil},
		},
		Groups:     groups,
		RowsFolded: 12345,
		Truncated:  true,
	}
}

func TestAggQueryRoundTrip(t *testing.T) {
	m := &AggQuery{
		Prefix:       "usage",
		Spec:         testAggSpec(),
		MinTs:        -5,
		MaxTs:        math.MaxInt64,
		MaxGroups:    4096,
		MaxTables:    3,
		WantPartials: true,
	}
	p := m.Encode()
	// AggQuery leads with its prefix so the router can route without a
	// full decode, exactly like the scatter messages.
	if name, err := PeekTable(p); err != nil || name != "usage" {
		t.Fatalf("PeekTable = %q, %v; want %q", name, err, "usage")
	}
	got, err := DecodeAggQuery(p)
	if err != nil {
		t.Fatal(err)
	}
	if got.Prefix != m.Prefix || got.MinTs != m.MinTs || got.MaxTs != m.MaxTs ||
		got.MaxGroups != m.MaxGroups || got.MaxTables != m.MaxTables ||
		got.WantPartials != m.WantPartials {
		t.Fatalf("scalar fields drifted: %+v", got)
	}
	if got.Spec.BucketWidth != m.Spec.BucketWidth || got.Spec.GroupCols != m.Spec.GroupCols ||
		len(got.Spec.Aggs) != len(m.Spec.Aggs) {
		t.Fatalf("spec drifted: %+v", got.Spec)
	}
	for i, a := range got.Spec.Aggs {
		w := m.Spec.Aggs[i]
		if a.Func != w.Func || a.Col != w.Col || a.Q != w.Q {
			t.Fatalf("agg %d drifted: got %+v want %+v", i, a, w)
		}
	}
	if !bytes.Equal(got.Encode(), p) {
		t.Fatal("re-encode not byte-identical")
	}
}

func TestAggResultRoundTrip(t *testing.T) {
	m := testAggResult()
	p := m.Encode()
	got, err := DecodeAggResult(p)
	if err != nil {
		t.Fatal(err)
	}
	if got.RowsFolded != m.RowsFolded || got.Truncated != m.Truncated {
		t.Fatalf("scalars drifted: %+v", got)
	}
	if len(got.Tables) != 2 || got.Tables[0].Table != "usage_a" || got.Tables[1].Table != "usage_b" {
		t.Fatalf("tables drifted: %+v", got.Tables)
	}
	if len(got.Tables[1].Groups) != 0 {
		t.Fatalf("empty partial grew groups: %+v", got.Tables[1].Groups)
	}
	if len(got.Groups) != 2 {
		t.Fatalf("got %d merged groups, want 2", len(got.Groups))
	}
	g := got.Groups[0]
	if g.Bucket != 0 || len(g.Key) != 2 || g.Key[0].Int != 4 {
		t.Fatalf("group 0 drifted: %+v", g)
	}
	if st := g.States[1]; st.N != 4 || st.IntSum != 400 || st.Saturated {
		t.Fatalf("int sum state drifted: %+v", st)
	}
	if st := g.States[5]; !st.IsFloat || !math.IsNaN(st.FloatSum) {
		t.Fatalf("NaN float sum not preserved: %+v", st)
	}
	if st := g.States[3]; !st.HasMM || st.MM.Float != -2.25 {
		t.Fatalf("min state drifted: %+v", st)
	}
	if g.States[6].Sketch == nil {
		t.Fatal("populated sketch decoded to nil")
	}
	want := m.Groups[0].States[6].Sketch.Quantile(0.95)
	if q := g.States[6].Sketch.Quantile(0.95); q != want {
		t.Fatalf("sketch quantile drifted: got %v want %v", q, want)
	}
	g1 := got.Groups[1]
	if st := g1.States[1]; st.IntSum != math.MaxInt64 || !st.Saturated {
		t.Fatalf("saturated sum not preserved: %+v", st)
	}
	if g1.States[3].HasMM || g1.States[4].HasMM {
		t.Fatalf("absent min/max decoded as present: %+v", g1.States[3])
	}
	if g1.States[6].Sketch != nil {
		t.Fatal("nil sketch decoded as populated")
	}
	if !bytes.Equal(got.Encode(), p) {
		t.Fatal("re-encode not byte-identical")
	}
}

// TestAggDecodeRejects drives the hostile-input discipline: truncation,
// counts larger than the payload could hold, invalid enum values,
// negative state counts, corrupt sketches, and trailing garbage must all
// surface as errors, never as panics or silent acceptance.
func TestAggDecodeRejects(t *testing.T) {
	q := (&AggQuery{Prefix: "u", Spec: testAggSpec(), MaxTs: 9}).Encode()
	r := testAggResult().Encode()

	for i := 0; i < len(q); i++ {
		if _, err := DecodeAggQuery(q[:i]); err == nil {
			t.Fatalf("truncated AggQuery at %d accepted", i)
		}
	}
	for i := 0; i < len(r); i++ {
		if _, err := DecodeAggResult(r[:i]); err == nil {
			t.Fatalf("truncated AggResult at %d accepted", i)
		}
	}
	if _, err := DecodeAggQuery(append(append([]byte{}, q...), 0)); err == nil {
		t.Fatal("trailing garbage on AggQuery accepted")
	}
	if _, err := DecodeAggResult(append(append([]byte{}, r...), 0)); err == nil {
		t.Fatal("trailing garbage on AggResult accepted")
	}

	// Hostile aggregate count: prefix + bucket width + group cols, then a
	// count far beyond the remaining payload.
	var b Buf
	b.String("u")
	b.I64(60)
	b.U32(1)
	b.U32(1 << 30)
	if _, err := DecodeAggQuery(b.B); err == nil {
		t.Fatal("hostile agg count accepted")
	}

	// Invalid aggregate function enum.
	bad := append([]byte{}, q...)
	// Func is the first byte of the first agg entry: after prefix
	// (4+1 bytes), bucket width (8), group cols (4), agg count (4).
	bad[4+1+8+4+4] = 0xee
	if _, err := DecodeAggQuery(bad); err == nil {
		t.Fatal("invalid agg func accepted")
	}

	// Hostile table count on a result: valid spec, then a huge count.
	var tb Buf
	encodeSpec(&tb, agg.Spec{BucketWidth: 1})
	tb.U32(1 << 30)
	if _, err := DecodeAggResult(tb.B); err == nil {
		t.Fatal("hostile table count accepted")
	}

	// Hostile group count inside a table partial.
	var gb Buf
	encodeSpec(&gb, agg.Spec{BucketWidth: 1})
	gb.U32(1)
	gb.String("t")
	gb.U32(1 << 30)
	if _, err := DecodeAggResult(gb.B); err == nil {
		t.Fatal("hostile group count accepted")
	}

	// Negative state N.
	var nb Buf
	spec := agg.Spec{BucketWidth: 1, Aggs: []agg.Agg{{Func: agg.Count}}}
	encodeSpec(&nb, spec)
	nb.U32(0) // no tables
	nb.U32(1) // one merged group
	nb.I64(0) // bucket
	nb.Values(nil)
	nb.I64(-1) // state N
	nb.I64(0)  // rows folded
	nb.Bool(false)
	if _, err := DecodeAggResult(nb.B); err == nil {
		t.Fatal("negative state count accepted")
	}

	// Corrupt sketch bytes inside a quantile state.
	var sb Buf
	qspec := agg.Spec{BucketWidth: 1, Aggs: []agg.Agg{{Func: agg.Quantile, Col: "c", Q: 0.5}}}
	encodeSpec(&sb, qspec)
	sb.U32(0)
	sb.U32(1)
	sb.I64(0)
	sb.Values(nil)
	sb.I64(1)
	sb.Bytes([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff})
	sb.I64(0)
	sb.Bool(false)
	if _, err := DecodeAggResult(sb.B); err == nil {
		t.Fatal("corrupt sketch accepted")
	}
}

// FuzzAggResult hammers both agg decoders with arbitrary bytes: they
// must never panic, and anything that decodes must re-encode and
// re-decode stably (the router re-encodes merged results, so an
// unstable decode would corrupt scatter responses).
func FuzzAggResult(f *testing.F) {
	f.Add(testAggResult().Encode())
	f.Add((&AggQuery{Prefix: "usage", Spec: testAggSpec(), MaxTs: 99}).Encode())
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 5, 'u', 's', 'a', 'g', 'e'})
	f.Add(bytes.Repeat([]byte{0xff}, 64))
	f.Fuzz(func(t *testing.T, data []byte) {
		if m, err := DecodeAggResult(data); err == nil {
			p := m.Encode()
			again, err := DecodeAggResult(p)
			if err != nil {
				t.Fatalf("re-decode of valid AggResult failed: %v", err)
			}
			if !bytes.Equal(again.Encode(), p) {
				t.Fatal("AggResult re-encode unstable")
			}
		}
		if m, err := DecodeAggQuery(data); err == nil {
			p := m.Encode()
			if _, err := DecodeAggQuery(p); err != nil {
				t.Fatalf("re-decode of valid AggQuery failed: %v", err)
			}
		}
	})
}
