package wire

import (
	"testing"

	"littletable/internal/ltval"
	"littletable/internal/schema"
)

// FuzzDecoders: arbitrary payloads into every message decoder must error
// or succeed, never panic — the server feeds network bytes straight in.
func FuzzDecoders(f *testing.F) {
	sc := schema.MustNew([]schema.Column{
		{Name: "k", Type: ltval.Int64},
		{Name: "ts", Type: ltval.Timestamp},
		{Name: "s", Type: ltval.String},
	}, []string{"k", "ts"})
	// Seeds: valid encodings of several messages.
	f.Add((&Hello{Version: 1}).Encode())
	q := &Query{Table: "t", HasLower: true, Lower: []ltval.Value{ltval.NewInt64(1)}, MinTs: -1, MaxTs: 1}
	f.Add(q.Encode())
	ins := NewInsert("t", sc, true, []schema.Row{{ltval.NewInt64(1), ltval.NewTimestamp(2), ltval.NewString("x")}})
	f.Add(ins.Encode())
	f.Add((&Delete{Table: "t", MinTs: 0, MaxTs: 10}).Encode())
	f.Add((&TableList{Names: []string{"a", "b"}}).Encode())
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff})

	f.Fuzz(func(t *testing.T, payload []byte) {
		DecodeHello(payload)
		DecodeCreateTable(payload)
		DecodeTableName(payload)
		DecodeQuery(payload)
		DecodeLatestRow(payload)
		DecodeAlterTTL(payload)
		DecodeAddColumn(payload)
		DecodeWidenColumn(payload)
		DecodeDelete(payload)
		DecodeDeleteResult(payload)
		DecodeErrorMsg(payload)
		DecodeTableList(payload)
		DecodeSchemaResp(payload)
		DecodeStatsResult(payload)
		DecodeServerStatsResult(payload)
		DecodeRows(payload, sc)
		DecodeRowResult(payload, sc)
		if m, d, err := DecodeInsertHeader(payload); err == nil {
			m.FinishDecode(d, sc)
		}
	})
}
