package wire

import (
	"testing"

	"littletable/internal/ltval"
	"littletable/internal/schema"
)

// FuzzDecoders: arbitrary payloads into every message decoder must error
// or succeed, never panic — the server feeds network bytes straight in.
func FuzzDecoders(f *testing.F) {
	sc := schema.MustNew([]schema.Column{
		{Name: "k", Type: ltval.Int64},
		{Name: "ts", Type: ltval.Timestamp},
		{Name: "s", Type: ltval.String},
	}, []string{"k", "ts"})
	// Seeds: valid encodings of several messages.
	f.Add((&Hello{Version: 1}).Encode())
	q := &Query{Table: "t", HasLower: true, Lower: []ltval.Value{ltval.NewInt64(1)}, MinTs: -1, MaxTs: 1}
	f.Add(q.Encode())
	ins := NewInsert("t", sc, true, []schema.Row{{ltval.NewInt64(1), ltval.NewTimestamp(2), ltval.NewString("x")}})
	f.Add(ins.Encode())
	f.Add((&Delete{Table: "t", MinTs: 0, MaxTs: 10}).Encode())
	f.Add((&TableList{Names: []string{"a", "b"}}).Encode())
	sq := &ScatterQuery{Prefix: "cust_", HasUpper: true, Upper: []ltval.Value{ltval.NewInt64(9)}, MaxTs: 5, PerTableLimit: 10}
	f.Add(sq.Encode())
	sr, _ := (&ScatterRows{Tables: []ScatterTableRows{{
		Table: "t", Schema: sc, More: true,
		Rows: []schema.Row{{ltval.NewInt64(1), ltval.NewTimestamp(2), ltval.NewString("x")}},
	}}}).Encode()
	f.Add(sr)
	mf, _ := (&MigrateManifest{Schema: sc, TTL: 60, Tablets: []MigrateTabletInfo{
		{File: "000000000001.tab", Seq: 1, RowCount: 5, MinTs: 1, MaxTs: 9, Bytes: 512},
	}}).Encode()
	f.Add(mf)
	f.Add((&MigrateFetch{Table: "t", File: "000000000001.tab", Offset: 64, MaxBytes: 1 << 20}).Encode())
	f.Add((&MigrateInstall{Table: "t", File: "000000000001.tab", Total: 3, RowCount: 1, Commit: true, Data: []byte{1, 2, 3}}).Encode())
	f.Add((&RouterStatsResult{RoutedInserts: 7, Shards: []RouterShardInfo{{Addr: "127.0.0.1:9155", State: 2}}}).Encode())
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff})

	f.Fuzz(func(t *testing.T, payload []byte) {
		DecodeHello(payload)
		DecodeCreateTable(payload)
		DecodeTableName(payload)
		DecodeQuery(payload)
		DecodeLatestRow(payload)
		DecodeAlterTTL(payload)
		DecodeAddColumn(payload)
		DecodeWidenColumn(payload)
		DecodeDelete(payload)
		DecodeDeleteResult(payload)
		DecodeErrorMsg(payload)
		DecodeTableList(payload)
		DecodeSchemaResp(payload)
		DecodeStatsResult(payload)
		DecodeServerStatsResult(payload)
		DecodeRows(payload, sc)
		DecodeRowResult(payload, sc)
		DecodeScatterQuery(payload)
		DecodeScatterRows(payload)
		DecodeMigrateBegin(payload)
		DecodeMigrateManifest(payload)
		DecodeMigrateFetch(payload)
		DecodeMigrateChunk(payload)
		DecodeMigrateEnd(payload)
		DecodeMigrateInstall(payload)
		DecodeMigrateTable(payload)
		DecodeRouterStatsResult(payload)
		if m, d, err := DecodeInsertHeader(payload); err == nil {
			m.FinishDecode(d, sc)
		}
	})
}
