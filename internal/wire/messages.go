package wire

import (
	"littletable/internal/ltval"
	"littletable/internal/schema"
)

// Hello opens a session.
type Hello struct {
	Version uint32
}

// Encode serializes the message payload.
func (m *Hello) Encode() []byte {
	var b Buf
	b.U32(m.Version)
	return b.B
}

// DecodeHello parses a Hello payload.
func DecodeHello(p []byte) (*Hello, error) {
	d := Dec{B: p}
	m := &Hello{Version: d.U32()}
	return m, d.Done()
}

// CreateTable asks the server to create a table.
type CreateTable struct {
	Name   string
	Schema *schema.Schema
	TTL    int64
}

// Encode serializes the message payload.
func (m *CreateTable) Encode() ([]byte, error) {
	var b Buf
	b.String(m.Name)
	if err := b.Schema(m.Schema); err != nil {
		return nil, err
	}
	b.I64(m.TTL)
	return b.B, nil
}

// DecodeCreateTable parses a CreateTable payload.
func DecodeCreateTable(p []byte) (*CreateTable, error) {
	d := Dec{B: p}
	m := &CreateTable{Name: d.String(), Schema: d.Schema(), TTL: d.I64()}
	return m, d.Done()
}

// TableName carries just a table name (DropTable, GetSchema, FlushTable,
// Stats).
type TableName struct {
	Name string
}

// Encode serializes the message payload.
func (m *TableName) Encode() []byte {
	var b Buf
	b.String(m.Name)
	return b.B
}

// DecodeTableName parses a TableName payload.
func DecodeTableName(p []byte) (*TableName, error) {
	d := Dec{B: p}
	m := &TableName{Name: d.String()}
	return m, d.Done()
}

// Insert carries a batch of rows. SchemaVersion lets the server reject
// rows encoded under a stale schema (the client then refreshes).
// ServerTimestamps, when set, tells the server to assign its current time
// to every row whose timestamp cell is zero (§3.1: "A client may also omit
// a row's timestamp entirely, in which case the server sets it to the
// current time").
type Insert struct {
	Table            string
	SchemaVersion    uint32
	ServerTimestamps bool
	Rows             []schema.Row
	sc               *schema.Schema
}

// NewInsert builds an insert batch for rows under sc.
func NewInsert(table string, sc *schema.Schema, serverTs bool, rows []schema.Row) *Insert {
	return &Insert{Table: table, SchemaVersion: sc.Version, ServerTimestamps: serverTs, Rows: rows, sc: sc}
}

// Encode serializes the message payload.
func (m *Insert) Encode() []byte {
	var b Buf
	b.String(m.Table)
	b.U32(m.SchemaVersion)
	b.Bool(m.ServerTimestamps)
	b.Rows(m.sc, m.Rows)
	return b.B
}

// DecodeInsertHeader parses the table name and schema version; the caller
// looks up the table's schema and finishes with FinishDecode.
func DecodeInsertHeader(p []byte) (*Insert, *Dec, error) {
	d := &Dec{B: p}
	m := &Insert{Table: d.String(), SchemaVersion: d.U32(), ServerTimestamps: d.Bool()}
	if d.Err != nil {
		return nil, nil, d.Err
	}
	return m, d, nil
}

// FinishDecode decodes the row batch under sc.
func (m *Insert) FinishDecode(d *Dec, sc *schema.Schema) error {
	m.Rows = d.Rows(sc)
	return d.Done()
}

// Query is the wire form of a core.Query.
type Query struct {
	Table              string
	Lower, Upper       []ltval.Value
	HasLower, HasUpper bool
	LowerInc, UpperInc bool
	MinTs, MaxTs       int64
	Descending         bool
	Limit              uint32
}

// Encode serializes the message payload.
func (m *Query) Encode() []byte {
	var b Buf
	b.String(m.Table)
	b.Bool(m.HasLower)
	b.Values(m.Lower)
	b.Bool(m.LowerInc)
	b.Bool(m.HasUpper)
	b.Values(m.Upper)
	b.Bool(m.UpperInc)
	b.I64(m.MinTs)
	b.I64(m.MaxTs)
	b.Bool(m.Descending)
	b.U32(m.Limit)
	return b.B
}

// DecodeQuery parses a Query payload.
func DecodeQuery(p []byte) (*Query, error) {
	d := Dec{B: p}
	m := &Query{
		Table:    d.String(),
		HasLower: d.Bool(),
	}
	m.Lower = d.Values()
	m.LowerInc = d.Bool()
	m.HasUpper = d.Bool()
	m.Upper = d.Values()
	m.UpperInc = d.Bool()
	m.MinTs = d.I64()
	m.MaxTs = d.I64()
	m.Descending = d.Bool()
	m.Limit = d.U32()
	return m, d.Done()
}

// LatestRow asks for the most recent row matching a key prefix (§3.4.5).
type LatestRow struct {
	Table  string
	Prefix []ltval.Value
}

// Encode serializes the message payload.
func (m *LatestRow) Encode() []byte {
	var b Buf
	b.String(m.Table)
	b.Values(m.Prefix)
	return b.B
}

// DecodeLatestRow parses a LatestRow payload.
func DecodeLatestRow(p []byte) (*LatestRow, error) {
	d := Dec{B: p}
	m := &LatestRow{Table: d.String(), Prefix: d.Values()}
	return m, d.Done()
}

// Delete is the wire form of the §7 bulk delete: a two-dimensional box
// whose contents are removed. There is deliberately no residual predicate
// on the wire — privacy deletions target key ranges (a customer, a
// network, a device) and time ranges.
type Delete struct {
	Table              string
	Lower, Upper       []ltval.Value
	HasLower, HasUpper bool
	LowerInc, UpperInc bool
	MinTs, MaxTs       int64
}

// Encode serializes the message payload.
func (m *Delete) Encode() []byte {
	var b Buf
	b.String(m.Table)
	b.Bool(m.HasLower)
	b.Values(m.Lower)
	b.Bool(m.LowerInc)
	b.Bool(m.HasUpper)
	b.Values(m.Upper)
	b.Bool(m.UpperInc)
	b.I64(m.MinTs)
	b.I64(m.MaxTs)
	return b.B
}

// DecodeDelete parses a Delete payload.
func DecodeDelete(p []byte) (*Delete, error) {
	d := Dec{B: p}
	m := &Delete{Table: d.String(), HasLower: d.Bool()}
	m.Lower = d.Values()
	m.LowerInc = d.Bool()
	m.HasUpper = d.Bool()
	m.Upper = d.Values()
	m.UpperInc = d.Bool()
	m.MinTs = d.I64()
	m.MaxTs = d.I64()
	return m, d.Done()
}

// DeleteResult reports how many rows a Delete removed.
type DeleteResult struct {
	Deleted int64
}

// Encode serializes the message payload.
func (m *DeleteResult) Encode() []byte {
	var b Buf
	b.I64(m.Deleted)
	return b.B
}

// DecodeDeleteResult parses a DeleteResult payload.
func DecodeDeleteResult(p []byte) (*DeleteResult, error) {
	d := Dec{B: p}
	m := &DeleteResult{Deleted: d.I64()}
	return m, d.Done()
}

// AlterTTL changes a table's TTL.
type AlterTTL struct {
	Table string
	TTL   int64
}

// Encode serializes the message payload.
func (m *AlterTTL) Encode() []byte {
	var b Buf
	b.String(m.Table)
	b.I64(m.TTL)
	return b.B
}

// DecodeAlterTTL parses an AlterTTL payload.
func DecodeAlterTTL(p []byte) (*AlterTTL, error) {
	d := Dec{B: p}
	m := &AlterTTL{Table: d.String(), TTL: d.I64()}
	return m, d.Done()
}

// AddColumn appends a column to a table's schema.
type AddColumn struct {
	Table   string
	Name    string
	Type    ltval.Type
	Default ltval.Value
}

// Encode serializes the message payload.
func (m *AddColumn) Encode() []byte {
	var b Buf
	b.String(m.Table)
	b.String(m.Name)
	b.U8(uint8(m.Type))
	hasDefault := m.Default.Type != ltval.Invalid
	b.Bool(hasDefault)
	if hasDefault {
		b.Value(m.Default)
	}
	return b.B
}

// DecodeAddColumn parses an AddColumn payload.
func DecodeAddColumn(p []byte) (*AddColumn, error) {
	d := Dec{B: p}
	m := &AddColumn{Table: d.String(), Name: d.String(), Type: ltval.Type(d.U8())}
	if d.Bool() {
		m.Default = d.Value()
	}
	return m, d.Done()
}

// WidenColumn widens an int32 column.
type WidenColumn struct {
	Table string
	Name  string
}

// Encode serializes the message payload.
func (m *WidenColumn) Encode() []byte {
	var b Buf
	b.String(m.Table)
	b.String(m.Name)
	return b.B
}

// DecodeWidenColumn parses a WidenColumn payload.
func DecodeWidenColumn(p []byte) (*WidenColumn, error) {
	d := Dec{B: p}
	m := &WidenColumn{Table: d.String(), Name: d.String()}
	return m, d.Done()
}

// --- server→client ---

// ErrorMsg reports a failed request.
type ErrorMsg struct {
	Message string
}

// Encode serializes the message payload.
func (m *ErrorMsg) Encode() []byte {
	var b Buf
	b.String(m.Message)
	return b.B
}

// DecodeErrorMsg parses an ErrorMsg payload.
func DecodeErrorMsg(p []byte) (*ErrorMsg, error) {
	d := Dec{B: p}
	m := &ErrorMsg{Message: d.String()}
	return m, d.Done()
}

// TableList answers ListTables.
type TableList struct {
	Names []string
}

// Encode serializes the message payload.
func (m *TableList) Encode() []byte {
	var b Buf
	b.U32(uint32(len(m.Names)))
	for _, n := range m.Names {
		b.String(n)
	}
	return b.B
}

// DecodeTableList parses a TableList payload.
func DecodeTableList(p []byte) (*TableList, error) {
	d := Dec{B: p}
	n := int(d.U32())
	m := &TableList{}
	for i := 0; i < n && d.Err == nil; i++ {
		m.Names = append(m.Names, d.String())
	}
	return m, d.Done()
}

// SchemaResp answers GetSchema: the schema, its sort order (implied by the
// schema's key), and the table's TTL.
type SchemaResp struct {
	Schema *schema.Schema
	TTL    int64
}

// Encode serializes the message payload.
func (m *SchemaResp) Encode() ([]byte, error) {
	var b Buf
	if err := b.Schema(m.Schema); err != nil {
		return nil, err
	}
	b.I64(m.TTL)
	return b.B, nil
}

// DecodeSchemaResp parses a SchemaResp payload.
func DecodeSchemaResp(p []byte) (*SchemaResp, error) {
	d := Dec{B: p}
	m := &SchemaResp{Schema: d.Schema(), TTL: d.I64()}
	return m, d.Done()
}

// Rows answers a Query: one batch of result rows plus the more-available
// flag (§3.5). The client resumes past the last row when more is set.
type Rows struct {
	SchemaVersion uint32
	More          bool
	Rows          []schema.Row
}

// Encode serializes the message payload under sc.
func (m *Rows) Encode(sc *schema.Schema) []byte {
	var b Buf
	b.U32(m.SchemaVersion)
	b.Bool(m.More)
	b.Rows(sc, m.Rows)
	return b.B
}

// DecodeRows parses a Rows payload under sc.
func DecodeRows(p []byte, sc *schema.Schema) (*Rows, error) {
	d := Dec{B: p}
	m := &Rows{SchemaVersion: d.U32(), More: d.Bool()}
	m.Rows = d.Rows(sc)
	return m, d.Done()
}

// RowResult answers LatestRow.
type RowResult struct {
	Found bool
	Row   schema.Row
}

// Encode serializes the message payload under sc.
func (m *RowResult) Encode(sc *schema.Schema) []byte {
	var b Buf
	b.Bool(m.Found)
	if m.Found {
		b.Rows(sc, []schema.Row{m.Row})
	}
	return b.B
}

// DecodeRowResult parses a RowResult payload under sc.
func DecodeRowResult(p []byte, sc *schema.Schema) (*RowResult, error) {
	d := Dec{B: p}
	m := &RowResult{Found: d.Bool()}
	if m.Found {
		rows := d.Rows(sc)
		if len(rows) == 1 {
			m.Row = rows[0]
		} else if d.Err == nil {
			d.fail("row result")
		}
	}
	return m, d.Done()
}

// StatsResult carries a table's counters for monitoring and the benchmark
// harness.
type StatsResult struct {
	RowsInserted   int64
	RowsReturned   int64
	RowsScanned    int64
	Queries        int64
	DiskTablets    int64
	DiskBytes      int64
	MemTablets     int64
	TabletsFlushed int64
	Merges         int64
	BytesFlushed   int64
	BytesMerged    int64
	RowsRewritten  int64
	RowEstimate    int64
	TabletsExpired int64

	// Uniqueness-check resolution counters: how inserts proved a key new
	// (§3.2's fast paths versus Bloom filters versus point reads).
	UniqueFastNew int64
	UniqueFastKey int64
	UniqueBloom   int64
	UniqueProbes  int64

	// Robustness counters: bad-storage events the table absorbed.
	TabletsQuarantined int64
	FlushFailures      int64
	MergeFailures      int64
	MergeRetries       int64
	FaultRecoveries    int64
	ReadErrors         int64

	// Parallel read-path counters: block traffic and cache effectiveness.
	BlocksRead       int64
	PrefetchHits     int64
	ParallelOpens    int64
	BlockCacheHits   int64
	BlockCacheMisses int64

	// Write-pipeline counters: group commit, seal/flush pipeline state,
	// and backpressure.
	InsertBatches      int64
	GroupCommits       int64
	TabletsSealed      int64
	AsyncFlushes       int64
	SealedBytes        int64 // gauge: sealed-but-unflushed bytes right now
	FlushQueueDepth    int64 // gauge: pending flush groups right now
	BackpressureStalls int64
	CommitFailures     int64 // descriptor commits that failed, losing sealed rows
	RowsLost           int64 // rows dropped by failed descriptor commits

	// Maintenance-scheduler counters: parallel merge/expiry progress,
	// queue delay (priority aging), and I/O-budget throttling.
	MergesInFlight            int64 // gauge: merges running right now
	MergeWaitNs               int64
	ExpiriesInFlight          int64 // gauge: expiry rounds running right now
	ExpiryWaitNs              int64
	ExpiryRuns                int64
	MaintenanceBytesThrottled int64
	MaintenanceThrottleNs     int64

	// Migration counters: sealed tablets received from another shard.
	TabletsInstalled int64
	BytesInstalled   int64

	// Block-encoding counters: columnar codec adoption and the bytes it
	// saves, across flushes, merges, and retention rewrites.
	BlocksEncoded         int64
	BlocksEncodedColumnar int64
	BytesBeforeEncode     int64
	BytesAfterEncode      int64
	ColumnsDeltaEncoded   int64
	ColumnsXOREncoded     int64
	ColumnsDictEncoded    int64
	ColumnsPlainEncoded   int64

	// Aggregation + downsampling counters: the MsgAggQuery read path and
	// the continuous-downsampling rollup jobs sourced from this table.
	AggQueries        int64
	AggRowsFolded     int64
	RollupRuns        int64
	RollupRowsWritten int64
}

// Encode serializes the message payload.
func (m *StatsResult) Encode() []byte {
	var b Buf
	for _, v := range []int64{
		m.RowsInserted, m.RowsReturned, m.RowsScanned, m.Queries,
		m.DiskTablets, m.DiskBytes, m.MemTablets, m.TabletsFlushed, m.Merges,
		m.BytesFlushed, m.BytesMerged, m.RowsRewritten, m.RowEstimate, m.TabletsExpired,
		m.UniqueFastNew, m.UniqueFastKey, m.UniqueBloom, m.UniqueProbes,
		m.TabletsQuarantined, m.FlushFailures, m.MergeFailures,
		m.MergeRetries, m.FaultRecoveries, m.ReadErrors,
		m.BlocksRead, m.PrefetchHits, m.ParallelOpens,
		m.BlockCacheHits, m.BlockCacheMisses,
		m.InsertBatches, m.GroupCommits, m.TabletsSealed,
		m.AsyncFlushes, m.SealedBytes, m.FlushQueueDepth,
		m.BackpressureStalls, m.CommitFailures, m.RowsLost,
		m.MergesInFlight, m.MergeWaitNs,
		m.ExpiriesInFlight, m.ExpiryWaitNs, m.ExpiryRuns,
		m.MaintenanceBytesThrottled, m.MaintenanceThrottleNs,
		m.TabletsInstalled, m.BytesInstalled,
		m.BlocksEncoded, m.BlocksEncodedColumnar,
		m.BytesBeforeEncode, m.BytesAfterEncode,
		m.ColumnsDeltaEncoded, m.ColumnsXOREncoded,
		m.ColumnsDictEncoded, m.ColumnsPlainEncoded,
		m.AggQueries, m.AggRowsFolded,
		m.RollupRuns, m.RollupRowsWritten,
	} {
		b.I64(v)
	}
	return b.B
}

// DecodeStatsResult parses a StatsResult payload.
func DecodeStatsResult(p []byte) (*StatsResult, error) {
	d := Dec{B: p}
	m := &StatsResult{}
	for _, f := range []*int64{
		&m.RowsInserted, &m.RowsReturned, &m.RowsScanned, &m.Queries,
		&m.DiskTablets, &m.DiskBytes, &m.MemTablets, &m.TabletsFlushed, &m.Merges,
		&m.BytesFlushed, &m.BytesMerged, &m.RowsRewritten, &m.RowEstimate, &m.TabletsExpired,
		&m.UniqueFastNew, &m.UniqueFastKey, &m.UniqueBloom, &m.UniqueProbes,
		&m.TabletsQuarantined, &m.FlushFailures, &m.MergeFailures,
		&m.MergeRetries, &m.FaultRecoveries, &m.ReadErrors,
		&m.BlocksRead, &m.PrefetchHits, &m.ParallelOpens,
		&m.BlockCacheHits, &m.BlockCacheMisses,
		&m.InsertBatches, &m.GroupCommits, &m.TabletsSealed,
		&m.AsyncFlushes, &m.SealedBytes, &m.FlushQueueDepth,
		&m.BackpressureStalls, &m.CommitFailures, &m.RowsLost,
		&m.MergesInFlight, &m.MergeWaitNs,
		&m.ExpiriesInFlight, &m.ExpiryWaitNs, &m.ExpiryRuns,
		&m.MaintenanceBytesThrottled, &m.MaintenanceThrottleNs,
		&m.TabletsInstalled, &m.BytesInstalled,
		&m.BlocksEncoded, &m.BlocksEncodedColumnar,
		&m.BytesBeforeEncode, &m.BytesAfterEncode,
		&m.ColumnsDeltaEncoded, &m.ColumnsXOREncoded,
		&m.ColumnsDictEncoded, &m.ColumnsPlainEncoded,
		&m.AggQueries, &m.AggRowsFolded,
		&m.RollupRuns, &m.RollupRowsWritten,
	} {
		*f = d.I64()
	}
	return m, d.Done()
}

// ServerStatsResult carries server-level (not per-table) counters: the
// connection hardening drops, the admission gate's shed count, and drain
// progress. The shard router (ROADMAP item 2) reads these to judge shard
// health.
type ServerStatsResult struct {
	ConnsActive          int64 // gauge: live client connections
	RequestsInFlight     int64 // gauge: requests past the admission gate right now
	ConnsDroppedDeadline int64
	ConnsDroppedOversize int64
	RequestsShed         int64 // requests refused with MsgOverloaded
	Draining             int64 // gauge: 1 while a graceful Shutdown is in progress
	DrainNs              int64 // total ns spent draining in Shutdown
}

// Encode serializes the message payload.
func (m *ServerStatsResult) Encode() []byte {
	var b Buf
	for _, v := range []int64{
		m.ConnsActive, m.RequestsInFlight,
		m.ConnsDroppedDeadline, m.ConnsDroppedOversize,
		m.RequestsShed, m.Draining, m.DrainNs,
	} {
		b.I64(v)
	}
	return b.B
}

// DecodeServerStatsResult parses a ServerStatsResult payload.
func DecodeServerStatsResult(p []byte) (*ServerStatsResult, error) {
	d := Dec{B: p}
	m := &ServerStatsResult{}
	for _, f := range []*int64{
		&m.ConnsActive, &m.RequestsInFlight,
		&m.ConnsDroppedDeadline, &m.ConnsDroppedOversize,
		&m.RequestsShed, &m.Draining, &m.DrainNs,
	} {
		*f = d.I64()
	}
	return m, d.Done()
}
