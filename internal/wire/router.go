package wire

import (
	"littletable/internal/ltval"
	"littletable/internal/schema"
)

// Router and migration messages.
//
// The shard router (ROADMAP item 2) speaks the same protocol as a single
// littletabled: every table-scoped request routes unchanged to the table's
// owner shard. The messages here are the additions that only make sense
// once there is more than one process: a prefix scatter query that fans
// out across tables (and, through the router, across shards), the
// tablet-shipping migration protocol (§5's prefix durability makes sealed
// tablets the natural replication unit — there is no WAL to replicate),
// and router-level stats.

// ScatterQuery asks for one bounded query evaluated against EVERY table
// whose name starts with Prefix. A single littletabled answers for its
// local tables; the router fans the same message out to all shards and
// concatenates. The key bounds and limits apply per table.
type ScatterQuery struct {
	Prefix             string
	Lower, Upper       []ltval.Value
	HasLower, HasUpper bool
	LowerInc, UpperInc bool
	MinTs, MaxTs       int64
	Descending         bool
	// PerTableLimit caps rows returned per table (0 = server default).
	PerTableLimit uint32
	// MaxTables caps how many matching tables are scanned (0 = no cap);
	// tables are taken in sorted name order so the cap is deterministic.
	MaxTables uint32
}

// Encode serializes the message payload.
func (m *ScatterQuery) Encode() []byte {
	var b Buf
	b.String(m.Prefix)
	b.Bool(m.HasLower)
	b.Values(m.Lower)
	b.Bool(m.LowerInc)
	b.Bool(m.HasUpper)
	b.Values(m.Upper)
	b.Bool(m.UpperInc)
	b.I64(m.MinTs)
	b.I64(m.MaxTs)
	b.Bool(m.Descending)
	b.U32(m.PerTableLimit)
	b.U32(m.MaxTables)
	return b.B
}

// DecodeScatterQuery parses a ScatterQuery payload.
func DecodeScatterQuery(p []byte) (*ScatterQuery, error) {
	d := Dec{B: p}
	m := &ScatterQuery{Prefix: d.String(), HasLower: d.Bool()}
	m.Lower = d.Values()
	m.LowerInc = d.Bool()
	m.HasUpper = d.Bool()
	m.Upper = d.Values()
	m.UpperInc = d.Bool()
	m.MinTs = d.I64()
	m.MaxTs = d.I64()
	m.Descending = d.Bool()
	m.PerTableLimit = d.U32()
	m.MaxTables = d.U32()
	return m, d.Done()
}

// ScatterTableRows is one table's slice of a scatter-query result. Each
// section carries its own schema: scatter queries span tables that share a
// shape by convention (one table per customer/device-class, §2.2), but the
// protocol does not assume it.
type ScatterTableRows struct {
	Table  string
	Schema *schema.Schema
	More   bool // this table tripped its row limit; re-query it directly
	Rows   []schema.Row
}

// ScatterRows answers a ScatterQuery: one section per matching table, in
// sorted table-name order. Truncated reports that MaxTables cut the table
// list short.
type ScatterRows struct {
	Truncated bool
	Tables    []ScatterTableRows
}

// Encode serializes the message payload.
func (m *ScatterRows) Encode() ([]byte, error) {
	var b Buf
	b.Bool(m.Truncated)
	b.U32(uint32(len(m.Tables)))
	for i := range m.Tables {
		s := &m.Tables[i]
		b.String(s.Table)
		if err := b.Schema(s.Schema); err != nil {
			return nil, err
		}
		b.Bool(s.More)
		b.Rows(s.Schema, s.Rows)
	}
	return b.B, nil
}

// DecodeScatterRows parses a ScatterRows payload.
func DecodeScatterRows(p []byte) (*ScatterRows, error) {
	d := Dec{B: p}
	m := &ScatterRows{Truncated: d.Bool()}
	n := int(d.U32())
	if d.Err == nil && n > len(d.B) {
		d.fail("scatter tables count")
	}
	for i := 0; i < n && d.Err == nil; i++ {
		s := ScatterTableRows{Table: d.String(), Schema: d.Schema()}
		s.More = d.Bool()
		if d.Err != nil {
			break
		}
		s.Rows = d.Rows(s.Schema)
		m.Tables = append(m.Tables, s)
	}
	return m, d.Done()
}

// --- migration: shipping sealed tablets between shards ---

// MigrateBegin freezes a table for export on the source shard: memtables
// are flushed, maintenance (merges, TTL expiry) is held so the tablet set
// only grows, and the current tablets are pinned so their files survive
// until MigrateEnd. Re-sending replaces the previous export snapshot while
// keeping the hold — the cutover pass reuses it to pick up tablets flushed
// since the first pass.
type MigrateBegin struct {
	Table string
}

// Encode serializes the message payload.
func (m *MigrateBegin) Encode() []byte {
	var b Buf
	b.String(m.Table)
	return b.B
}

// DecodeMigrateBegin parses a MigrateBegin payload.
func DecodeMigrateBegin(p []byte) (*MigrateBegin, error) {
	d := Dec{B: p}
	m := &MigrateBegin{Table: d.String()}
	return m, d.Done()
}

// MigrateTabletInfo describes one pinned sealed tablet available to fetch.
type MigrateTabletInfo struct {
	File     string
	Seq      uint64
	RowCount int64
	MinTs    int64
	MaxTs    int64
	Bytes    int64
}

// MigrateManifest answers MigrateBegin: the table's schema and TTL plus
// every pinned tablet.
type MigrateManifest struct {
	Schema  *schema.Schema
	TTL     int64
	Tablets []MigrateTabletInfo
}

// Encode serializes the message payload.
func (m *MigrateManifest) Encode() ([]byte, error) {
	var b Buf
	if err := b.Schema(m.Schema); err != nil {
		return nil, err
	}
	b.I64(m.TTL)
	b.U32(uint32(len(m.Tablets)))
	for _, t := range m.Tablets {
		b.String(t.File)
		b.U64(t.Seq)
		b.I64(t.RowCount)
		b.I64(t.MinTs)
		b.I64(t.MaxTs)
		b.I64(t.Bytes)
	}
	return b.B, nil
}

// DecodeMigrateManifest parses a MigrateManifest payload.
func DecodeMigrateManifest(p []byte) (*MigrateManifest, error) {
	d := Dec{B: p}
	m := &MigrateManifest{Schema: d.Schema(), TTL: d.I64()}
	n := int(d.U32())
	if d.Err == nil && n > len(d.B) {
		d.fail("manifest tablets count")
	}
	for i := 0; i < n && d.Err == nil; i++ {
		m.Tablets = append(m.Tablets, MigrateTabletInfo{
			File:     d.String(),
			Seq:      d.U64(),
			RowCount: d.I64(),
			MinTs:    d.I64(),
			MaxTs:    d.I64(),
			Bytes:    d.I64(),
		})
	}
	return m, d.Done()
}

// MigrateFetch reads MaxBytes bytes of a pinned tablet file at Offset.
// Reads are stateless and idempotent; any connection may carry any chunk.
type MigrateFetch struct {
	Table    string
	File     string
	Offset   int64
	MaxBytes uint32
}

// Encode serializes the message payload.
func (m *MigrateFetch) Encode() []byte {
	var b Buf
	b.String(m.Table)
	b.String(m.File)
	b.I64(m.Offset)
	b.U32(m.MaxBytes)
	return b.B
}

// DecodeMigrateFetch parses a MigrateFetch payload.
func DecodeMigrateFetch(p []byte) (*MigrateFetch, error) {
	d := Dec{B: p}
	m := &MigrateFetch{Table: d.String(), File: d.String(), Offset: d.I64(), MaxBytes: d.U32()}
	return m, d.Done()
}

// MigrateChunk answers MigrateFetch: Total is the file size, Data the
// bytes at the requested offset (short only at end of file).
type MigrateChunk struct {
	Total int64
	Data  []byte
}

// Encode serializes the message payload.
func (m *MigrateChunk) Encode() []byte {
	var b Buf
	b.I64(m.Total)
	b.Bytes(m.Data)
	return b.B
}

// DecodeMigrateChunk parses a MigrateChunk payload.
func DecodeMigrateChunk(p []byte) (*MigrateChunk, error) {
	d := Dec{B: p}
	m := &MigrateChunk{Total: d.I64(), Data: d.Bytes()}
	return m, d.Done()
}

// MigrateEnd releases a table's export snapshot and maintenance hold on
// the source shard. Idempotent: ending a table with no export is OK.
type MigrateEnd struct {
	Table string
}

// Encode serializes the message payload.
func (m *MigrateEnd) Encode() []byte {
	var b Buf
	b.String(m.Table)
	return b.B
}

// DecodeMigrateEnd parses a MigrateEnd payload.
func DecodeMigrateEnd(p []byte) (*MigrateEnd, error) {
	d := Dec{B: p}
	m := &MigrateEnd{Table: d.String()}
	return m, d.Done()
}

// MigrateInstall ships one chunk of a sealed tablet to the target shard.
// Chunks of a file arrive in offset order into a staging buffer keyed by
// (table, file); Offset must equal the bytes staged so far (an offset-0
// chunk restarts the file, making a failed transfer restartable). When
// Commit is set the staged bytes are validated — footer parsed, every
// block checksum verified — and atomically installed into the table under
// a fresh tablet sequence with a descriptor commit.
type MigrateInstall struct {
	Table    string
	File     string // source-side file name; staging key only
	Offset   int64
	Total    int64
	RowCount int64
	MinTs    int64
	MaxTs    int64
	Commit   bool
	Data     []byte
}

// Encode serializes the message payload.
func (m *MigrateInstall) Encode() []byte {
	var b Buf
	b.String(m.Table)
	b.String(m.File)
	b.I64(m.Offset)
	b.I64(m.Total)
	b.I64(m.RowCount)
	b.I64(m.MinTs)
	b.I64(m.MaxTs)
	b.Bool(m.Commit)
	b.Bytes(m.Data)
	return b.B
}

// DecodeMigrateInstall parses a MigrateInstall payload.
func DecodeMigrateInstall(p []byte) (*MigrateInstall, error) {
	d := Dec{B: p}
	m := &MigrateInstall{
		Table:  d.String(),
		File:   d.String(),
		Offset: d.I64(),
		Total:  d.I64(),
	}
	m.RowCount = d.I64()
	m.MinTs = d.I64()
	m.MaxTs = d.I64()
	m.Commit = d.Bool()
	m.Data = d.Bytes()
	return m, d.Done()
}

// MigrateTable is a router-only control message: move a table to the
// shard at TargetAddr by shipping its sealed tablets, then flip placement
// and drop the source copy. The router answers OK when the table is fully
// served from the target.
// PeekTable extracts the table name from any table-scoped request
// payload without decoding the rest. Every table-scoped message starts
// with the length-prefixed table name precisely so a router can route on
// it and forward the bytes untouched.
func PeekTable(p []byte) (string, error) {
	d := Dec{B: p}
	name := d.String()
	if d.Err != nil {
		return "", d.Err
	}
	return name, nil
}

type MigrateTable struct {
	Table      string
	TargetAddr string
}

// Encode serializes the message payload.
func (m *MigrateTable) Encode() []byte {
	var b Buf
	b.String(m.Table)
	b.String(m.TargetAddr)
	return b.B
}

// DecodeMigrateTable parses a MigrateTable payload.
func DecodeMigrateTable(p []byte) (*MigrateTable, error) {
	d := Dec{B: p}
	m := &MigrateTable{Table: d.String(), TargetAddr: d.String()}
	return m, d.Done()
}

// RouterShardInfo is one shard's health as the router sees it.
type RouterShardInfo struct {
	Addr string
	// State is the router's health verdict: 0 up, 1 draining, 2 down.
	State uint8
}

// RouterStatsResult carries the router's counters and per-shard health.
type RouterStatsResult struct {
	RoutedInserts       int64
	RoutedQueries       int64
	ScatterFanout       int64
	ShardDown           int64
	RateLimited         int64
	MigrationsCompleted int64
	MigratedBytes       int64
	Shards              []RouterShardInfo
}

// Encode serializes the message payload.
func (m *RouterStatsResult) Encode() []byte {
	var b Buf
	for _, v := range []int64{
		m.RoutedInserts, m.RoutedQueries, m.ScatterFanout, m.ShardDown,
		m.RateLimited, m.MigrationsCompleted, m.MigratedBytes,
	} {
		b.I64(v)
	}
	b.U32(uint32(len(m.Shards)))
	for _, s := range m.Shards {
		b.String(s.Addr)
		b.U8(s.State)
	}
	return b.B
}

// DecodeRouterStatsResult parses a RouterStatsResult payload.
func DecodeRouterStatsResult(p []byte) (*RouterStatsResult, error) {
	d := Dec{B: p}
	m := &RouterStatsResult{}
	for _, f := range []*int64{
		&m.RoutedInserts, &m.RoutedQueries, &m.ScatterFanout, &m.ShardDown,
		&m.RateLimited, &m.MigrationsCompleted, &m.MigratedBytes,
	} {
		*f = d.I64()
	}
	n := int(d.U32())
	if d.Err == nil && n > len(d.B) {
		d.fail("router shards count")
	}
	for i := 0; i < n && d.Err == nil; i++ {
		m.Shards = append(m.Shards, RouterShardInfo{Addr: d.String(), State: d.U8()})
	}
	return m, d.Done()
}
