package wire

import (
	"reflect"
	"testing"

	"littletable/internal/ltval"
	"littletable/internal/schema"
)

func TestScatterQueryRoundTrip(t *testing.T) {
	m := &ScatterQuery{
		Prefix:   "cust_",
		HasLower: true, Lower: []ltval.Value{ltval.NewInt64(3)}, LowerInc: true,
		HasUpper: true, Upper: []ltval.Value{ltval.NewInt64(9)},
		MinTs: -5, MaxTs: 99, Descending: true,
		PerTableLimit: 128, MaxTables: 1000,
	}
	g, err := DecodeScatterQuery(m.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(m, g) {
		t.Fatalf("round trip:\n got %+v\nwant %+v", g, m)
	}
}

func TestScatterRowsRoundTrip(t *testing.T) {
	sc := schema.MustNew([]schema.Column{
		{Name: "k", Type: ltval.Int64},
		{Name: "ts", Type: ltval.Timestamp},
		{Name: "v", Type: ltval.Double},
	}, []string{"k", "ts"})
	sc2 := schema.MustNew([]schema.Column{
		{Name: "name", Type: ltval.String},
		{Name: "ts", Type: ltval.Timestamp},
	}, []string{"name", "ts"})
	m := &ScatterRows{
		Truncated: true,
		Tables: []ScatterTableRows{
			{Table: "cust_a", Schema: sc, More: true, Rows: []schema.Row{
				{ltval.NewInt64(1), ltval.NewTimestamp(10), ltval.NewDouble(0.5)},
				{ltval.NewInt64(2), ltval.NewTimestamp(20), ltval.NewDouble(1.5)},
			}},
			// A table with a different shape in the same response, and one
			// with no rows at all.
			{Table: "cust_b", Schema: sc2, Rows: []schema.Row{
				{ltval.NewString("x"), ltval.NewTimestamp(7)},
			}},
			{Table: "cust_c", Schema: sc},
		},
	}
	p, err := m.Encode()
	if err != nil {
		t.Fatal(err)
	}
	g, err := DecodeScatterRows(p)
	if err != nil {
		t.Fatal(err)
	}
	if !g.Truncated || len(g.Tables) != 3 {
		t.Fatalf("got truncated=%v tables=%d", g.Truncated, len(g.Tables))
	}
	for i := range m.Tables {
		want, got := m.Tables[i], g.Tables[i]
		if got.Table != want.Table || got.More != want.More || len(got.Rows) != len(want.Rows) {
			t.Fatalf("table %d: got %+v want %+v", i, got, want)
		}
		for j := range want.Rows {
			for c := range want.Rows[j] {
				if want.Rows[j][c].Compare(got.Rows[j][c]) != 0 {
					t.Fatalf("table %d row %d col %d: got %v want %v", i, j, c, got.Rows[j][c], want.Rows[j][c])
				}
			}
		}
	}
}

func TestMigrateMessagesRoundTrip(t *testing.T) {
	sc := schema.MustNew([]schema.Column{
		{Name: "k", Type: ltval.Int64},
		{Name: "ts", Type: ltval.Timestamp},
	}, []string{"k", "ts"})

	mb := &MigrateBegin{Table: "t1"}
	if g, err := DecodeMigrateBegin(mb.Encode()); err != nil || g.Table != "t1" {
		t.Fatalf("MigrateBegin: %+v %v", g, err)
	}

	man := &MigrateManifest{Schema: sc, TTL: 3600, Tablets: []MigrateTabletInfo{
		{File: "000000000001.tab", Seq: 1, RowCount: 100, MinTs: 5, MaxTs: 50, Bytes: 4096},
		{File: "000000000002.tab", Seq: 2, RowCount: 7, MinTs: 60, MaxTs: 61, Bytes: 256},
	}}
	p, err := man.Encode()
	if err != nil {
		t.Fatal(err)
	}
	gman, err := DecodeMigrateManifest(p)
	if err != nil {
		t.Fatal(err)
	}
	if gman.TTL != 3600 || !reflect.DeepEqual(gman.Tablets, man.Tablets) {
		t.Fatalf("manifest: got %+v want %+v", gman, man)
	}

	mf := &MigrateFetch{Table: "t1", File: "000000000001.tab", Offset: 1 << 20, MaxBytes: 1 << 16}
	if g, err := DecodeMigrateFetch(mf.Encode()); err != nil || !reflect.DeepEqual(g, mf) {
		t.Fatalf("MigrateFetch: %+v %v", g, err)
	}

	mc := &MigrateChunk{Total: 4096, Data: []byte{9, 8, 7}}
	if g, err := DecodeMigrateChunk(mc.Encode()); err != nil || g.Total != 4096 || len(g.Data) != 3 {
		t.Fatalf("MigrateChunk: %+v %v", g, err)
	}

	me := &MigrateEnd{Table: "t1"}
	if g, err := DecodeMigrateEnd(me.Encode()); err != nil || g.Table != "t1" {
		t.Fatalf("MigrateEnd: %+v %v", g, err)
	}

	mi := &MigrateInstall{
		Table: "t1", File: "000000000001.tab", Offset: 128, Total: 131,
		RowCount: 100, MinTs: 5, MaxTs: 50, Commit: true, Data: []byte{1, 2, 3},
	}
	gi, err := DecodeMigrateInstall(mi.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if gi.Table != "t1" || gi.Offset != 128 || gi.Total != 131 || !gi.Commit || len(gi.Data) != 3 {
		t.Fatalf("MigrateInstall: %+v", gi)
	}

	mt := &MigrateTable{Table: "t1", TargetAddr: "127.0.0.1:9156"}
	if g, err := DecodeMigrateTable(mt.Encode()); err != nil || !reflect.DeepEqual(g, mt) {
		t.Fatalf("MigrateTable: %+v %v", g, err)
	}
}

func TestRouterStatsResultRoundTrip(t *testing.T) {
	m := &RouterStatsResult{
		RoutedInserts: 1, RoutedQueries: 2, ScatterFanout: 3, ShardDown: 4,
		RateLimited: 5, MigrationsCompleted: 6, MigratedBytes: 7,
		Shards: []RouterShardInfo{
			{Addr: "127.0.0.1:9155", State: 0},
			{Addr: "127.0.0.1:9156", State: 2},
		},
	}
	g, err := DecodeRouterStatsResult(m.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(m, g) {
		t.Fatalf("round trip:\n got %+v\nwant %+v", g, m)
	}
}

func TestRouterDecodeGarbage(t *testing.T) {
	garbage := [][]byte{nil, {1}, {255, 255, 255, 255}, {0, 0, 0, 0, 9, 9, 9}}
	for _, g := range garbage {
		DecodeScatterQuery(g)
		DecodeScatterRows(g)
		DecodeMigrateBegin(g)
		DecodeMigrateManifest(g)
		DecodeMigrateFetch(g)
		DecodeMigrateChunk(g)
		DecodeMigrateEnd(g)
		DecodeMigrateInstall(g)
		DecodeMigrateTable(g)
		DecodeRouterStatsResult(g)
		// Not panicking is the assertion.
	}
}
