// Package wire defines LittleTable's client–server protocol (§3.1): the
// paper's SQLite adaptor communicates with the server over TCP to list
// tables, fetch schemas and sort orders, insert row batches, and run
// bounded ordered scans. This package provides the framing and message
// codecs; internal/server and internal/client sit on either end.
//
// Framing: every message is [u32 payload length][u8 message type][payload],
// little-endian. The length covers the type byte and payload.
package wire

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"littletable/internal/ltval"
	"littletable/internal/schema"
)

// MaxFrame bounds a single message; large query results span many frames.
const MaxFrame = 64 << 20

// MsgType identifies a protocol message.
type MsgType uint8

// Client→server message types.
const (
	MsgHello MsgType = iota + 1
	MsgListTables
	MsgCreateTable
	MsgDropTable
	MsgGetSchema
	MsgInsert
	MsgQuery
	MsgLatestRow
	MsgAlterTTL
	MsgAddColumn
	MsgWidenColumn
	MsgFlushTable // the flush-to-timestamp command proposed in §4.1.2
	MsgStats
	MsgDelete      // the bulk delete proposed in §7
	MsgServerStats // server-level (not per-table) counters: conns, shedding, drain
	// Scatter + migration messages (router tier; see router.go). A single
	// server answers for its local tables; the router fans out.
	MsgScatterQuery   // one bounded query across every table matching a prefix
	MsgMigrateBegin   // freeze-flush a table, pin sealed tablets, hold maintenance
	MsgMigrateFetch   // read a chunk of a pinned tablet file
	MsgMigrateEnd     // release the export snapshot and maintenance hold
	MsgMigrateInstall // ship a sealed-tablet chunk into the target shard
	MsgMigrateTable   // router-only: move a table to another shard
	MsgRouterStats    // router-only: routing counters + shard health
	// MsgAggQuery is a server-side aggregation over every table matching a
	// prefix: rows fold into (time-bucket × key-prefix) groups as the merge
	// cursor yields them, so only O(groups) partial aggregates cross the
	// wire (see internal/agg and agg.go in this package).
	MsgAggQuery
)

// Server→client message types.
const (
	MsgOK MsgType = iota + 64
	MsgError
	MsgTableList
	MsgSchema
	MsgRows
	MsgRowResult
	MsgStatsResult
	MsgDeleteResult
	MsgServerStatsResult
	// MsgOverloaded is a distinct refusal, not a generic MsgError: the
	// server's admission gate is full and the request was NOT processed.
	// Clients may safely retry any request — including non-idempotent
	// inserts — after backing off, which is exactly what a generic error
	// cannot promise.
	MsgOverloaded
	MsgScatterRows       // per-table sections answering MsgScatterQuery
	MsgMigrateManifest   // schema + pinned tablet list answering MsgMigrateBegin
	MsgMigrateChunk      // tablet bytes answering MsgMigrateFetch
	MsgRouterStatsResult // counters + shard health answering MsgRouterStats
	MsgAggResult         // mergeable partial aggregates answering MsgAggQuery
)

// ProtocolVersion guards client/server compatibility in Hello.
const ProtocolVersion = 1

// Errors returned by the codec.
var (
	ErrFrameTooBig = errors.New("wire: frame exceeds MaxFrame")
	ErrCorrupt     = errors.New("wire: corrupt message")
)

// Conn frames messages over any ReadWriter (normally a TCP connection).
type Conn struct {
	r       *bufio.Reader
	w       *bufio.Writer
	readMax int
}

// NewConn wraps rw in buffered framing.
func NewConn(rw io.ReadWriter) *Conn {
	return &Conn{r: bufio.NewReaderSize(rw, 64*1024), w: bufio.NewWriterSize(rw, 64*1024), readMax: MaxFrame}
}

// SetReadLimit caps incoming frame sizes below MaxFrame, so a server can
// bound per-connection memory against oversized (or malicious) requests.
// n <= 0 or n > MaxFrame leaves the MaxFrame default.
func (c *Conn) SetReadLimit(n int) {
	if n > 0 && n <= MaxFrame {
		c.readMax = n
	}
}

// WriteMsg sends one message and flushes.
func (c *Conn) WriteMsg(t MsgType, payload []byte) error {
	n := len(payload) + 1
	if n > MaxFrame {
		return ErrFrameTooBig
	}
	var hdr [5]byte
	hdr[0], hdr[1], hdr[2], hdr[3] = byte(n), byte(n>>8), byte(n>>16), byte(n>>24)
	hdr[4] = byte(t)
	if _, err := c.w.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := c.w.Write(payload); err != nil {
		return err
	}
	return c.w.Flush()
}

// ReadMsg receives one message.
func (c *Conn) ReadMsg() (MsgType, []byte, error) {
	var hdr [5]byte
	if _, err := io.ReadFull(c.r, hdr[:4]); err != nil {
		return 0, nil, err
	}
	n := int(uint32(hdr[0]) | uint32(hdr[1])<<8 | uint32(hdr[2])<<16 | uint32(hdr[3])<<24)
	if n < 1 || n > c.readMax {
		return 0, nil, ErrFrameTooBig
	}
	if _, err := io.ReadFull(c.r, hdr[4:5]); err != nil {
		return 0, nil, err
	}
	payload := make([]byte, n-1)
	if _, err := io.ReadFull(c.r, payload); err != nil {
		return 0, nil, err
	}
	return MsgType(hdr[4]), payload, nil
}

// --- primitive encoders ---

// Buf is an append-only payload builder with matched reader in Dec.
type Buf struct{ B []byte }

// U8 appends a byte.
func (b *Buf) U8(v uint8) { b.B = append(b.B, v) }

// U32 appends a little-endian uint32.
func (b *Buf) U32(v uint32) {
	b.B = append(b.B, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}

// U64 appends a little-endian uint64.
func (b *Buf) U64(v uint64) {
	b.U32(uint32(v))
	b.U32(uint32(v >> 32))
}

// I64 appends an int64.
func (b *Buf) I64(v int64) { b.U64(uint64(v)) }

// Bool appends a boolean.
func (b *Buf) Bool(v bool) {
	if v {
		b.U8(1)
	} else {
		b.U8(0)
	}
}

// Bytes appends a length-prefixed byte slice.
func (b *Buf) Bytes(v []byte) {
	b.U32(uint32(len(v)))
	b.B = append(b.B, v...)
}

// String appends a length-prefixed string.
func (b *Buf) String(v string) { b.Bytes([]byte(v)) }

// Value appends a type-tagged value (used for key bounds, whose layout is
// not fixed by any one schema).
func (b *Buf) Value(v ltval.Value) {
	b.U8(uint8(v.Type))
	b.B = v.Append(b.B)
}

// Values appends a count-prefixed sequence of tagged values.
func (b *Buf) Values(vs []ltval.Value) {
	b.U32(uint32(len(vs)))
	for _, v := range vs {
		b.Value(v)
	}
}

// Dec decodes payloads built with Buf; errors are sticky.
type Dec struct {
	B   []byte
	off int
	Err error
}

func (d *Dec) fail(what string) {
	if d.Err == nil {
		d.Err = fmt.Errorf("%w: short payload reading %s at %d", ErrCorrupt, what, d.off)
	}
}

// U8 reads a byte.
func (d *Dec) U8() uint8 {
	if d.Err != nil || d.off+1 > len(d.B) {
		d.fail("u8")
		return 0
	}
	v := d.B[d.off]
	d.off++
	return v
}

// U32 reads a uint32.
func (d *Dec) U32() uint32 {
	if d.Err != nil || d.off+4 > len(d.B) {
		d.fail("u32")
		return 0
	}
	b := d.B[d.off:]
	d.off += 4
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

// U64 reads a uint64.
func (d *Dec) U64() uint64 {
	lo := d.U32()
	hi := d.U32()
	return uint64(lo) | uint64(hi)<<32
}

// I64 reads an int64.
func (d *Dec) I64() int64 { return int64(d.U64()) }

// Bool reads a boolean.
func (d *Dec) Bool() bool { return d.U8() != 0 }

// Bytes reads a length-prefixed byte slice (aliasing the payload).
func (d *Dec) Bytes() []byte {
	n := int(d.U32())
	if d.Err != nil || n < 0 || d.off+n > len(d.B) {
		d.fail("bytes")
		return nil
	}
	v := d.B[d.off : d.off+n]
	d.off += n
	return v
}

// String reads a length-prefixed string.
func (d *Dec) String() string { return string(d.Bytes()) }

// Value reads a tagged value.
func (d *Dec) Value() ltval.Value {
	t := ltval.Type(d.U8())
	if d.Err != nil {
		return ltval.Value{}
	}
	v, n, err := ltval.Decode(t, d.B[d.off:])
	if err != nil {
		d.Err = err
		return ltval.Value{}
	}
	d.off += n
	return v
}

// Values reads a count-prefixed sequence of tagged values.
func (d *Dec) Values() []ltval.Value {
	n := int(d.U32())
	if d.Err != nil || n < 0 || n > len(d.B) {
		d.fail("values")
		return nil
	}
	if n == 0 {
		return nil
	}
	out := make([]ltval.Value, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, d.Value())
	}
	return out
}

// Done reports whether the payload was fully and cleanly consumed.
func (d *Dec) Done() error {
	if d.Err != nil {
		return d.Err
	}
	if d.off != len(d.B) {
		return fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, len(d.B)-d.off)
	}
	return nil
}

// Schema appends a schema as JSON (schemas are tiny; clarity wins).
func (b *Buf) Schema(sc *schema.Schema) error {
	data, err := json.Marshal(sc)
	if err != nil {
		return err
	}
	b.Bytes(data)
	return nil
}

// Schema reads a schema.
func (d *Dec) Schema() *schema.Schema {
	data := d.Bytes()
	if d.Err != nil {
		return nil
	}
	sc := &schema.Schema{}
	if err := json.Unmarshal(data, sc); err != nil {
		d.Err = err
		return nil
	}
	return sc
}

// Rows appends a count-prefixed batch of rows encoded under sc.
func (b *Buf) Rows(sc *schema.Schema, rows []schema.Row) {
	b.U32(uint32(len(rows)))
	for _, r := range rows {
		b.B = sc.AppendRow(b.B, r)
	}
}

// Rows decodes a batch encoded under sc. Rows alias the payload; callers
// needing longer lifetimes clone.
func (d *Dec) Rows(sc *schema.Schema) []schema.Row {
	n := int(d.U32())
	if d.Err != nil || n < 0 {
		return nil
	}
	// Every row encodes to at least one byte per column; a count beyond
	// the remaining payload is corrupt, and pre-allocating from it would
	// let a hostile frame exhaust memory.
	if n > len(d.B)-d.off+1 {
		d.fail("rows count")
		return nil
	}
	rows := make([]schema.Row, 0, n)
	for i := 0; i < n; i++ {
		if d.off > len(d.B) {
			d.fail("rows")
			return nil
		}
		row, used, err := sc.DecodeRow(d.B[d.off:])
		if err != nil {
			d.Err = err
			return nil
		}
		d.off += used
		rows = append(rows, row)
	}
	return rows
}
