package wire

import (
	"bytes"
	"net"
	"testing"
	"testing/quick"

	"littletable/internal/ltval"
	"littletable/internal/schema"
)

func testSchema(t testing.TB) *schema.Schema {
	t.Helper()
	return schema.MustNew([]schema.Column{
		{Name: "k", Type: ltval.Int64},
		{Name: "ts", Type: ltval.Timestamp},
		{Name: "name", Type: ltval.String},
		{Name: "v", Type: ltval.Double},
	}, []string{"k", "ts"})
}

func TestConnRoundTrip(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	ca, cb := NewConn(a), NewConn(b)
	done := make(chan error, 1)
	go func() {
		done <- ca.WriteMsg(MsgHello, []byte{1, 2, 3})
	}()
	mt, payload, err := cb.ReadMsg()
	if err != nil {
		t.Fatal(err)
	}
	if mt != MsgHello || !bytes.Equal(payload, []byte{1, 2, 3}) {
		t.Fatalf("got %d %v", mt, payload)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

func TestConnEmptyPayload(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	ca, cb := NewConn(a), NewConn(b)
	go ca.WriteMsg(MsgOK, nil)
	mt, payload, err := cb.ReadMsg()
	if err != nil || mt != MsgOK || len(payload) != 0 {
		t.Fatalf("%v %d %v", err, mt, payload)
	}
}

func TestConnRejectsHugeFrame(t *testing.T) {
	var buf bytes.Buffer
	c := NewConn(&buf)
	if err := c.WriteMsg(MsgInsert, make([]byte, MaxFrame)); err != ErrFrameTooBig {
		t.Errorf("oversized write: %v", err)
	}
	// A corrupt length on read.
	buf.Reset()
	buf.Write([]byte{0xff, 0xff, 0xff, 0xff, 1})
	if _, _, err := NewConn(&buf).ReadMsg(); err == nil {
		t.Error("oversized frame length accepted")
	}
}

func TestBufDecRoundTrip(t *testing.T) {
	var b Buf
	b.U8(7)
	b.U32(1 << 30)
	b.U64(1 << 60)
	b.I64(-12345)
	b.Bool(true)
	b.Bool(false)
	b.Bytes([]byte("blob"))
	b.String("str")
	b.Value(ltval.NewDouble(2.5))
	b.Values([]ltval.Value{ltval.NewInt64(1), ltval.NewString("x")})
	d := Dec{B: b.B}
	if d.U8() != 7 || d.U32() != 1<<30 || d.U64() != 1<<60 || d.I64() != -12345 {
		t.Fatal("numeric round trip failed")
	}
	if !d.Bool() || d.Bool() {
		t.Fatal("bool round trip failed")
	}
	if string(d.Bytes()) != "blob" || d.String() != "str" {
		t.Fatal("bytes round trip failed")
	}
	if v := d.Value(); v.Type != ltval.Double || v.Float != 2.5 {
		t.Fatalf("value round trip: %v", v)
	}
	vs := d.Values()
	if len(vs) != 2 || vs[0].Int != 1 || string(vs[1].Bytes) != "x" {
		t.Fatalf("values round trip: %v", vs)
	}
	if err := d.Done(); err != nil {
		t.Fatal(err)
	}
}

func TestDecTruncation(t *testing.T) {
	var b Buf
	b.String("hello")
	b.U64(42)
	full := b.B
	for cut := 0; cut < len(full); cut++ {
		d := Dec{B: full[:cut]}
		_ = d.String()
		_ = d.U64()
		if d.Done() == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}

func TestMessagesRoundTrip(t *testing.T) {
	sc := testSchema(t)

	h := &Hello{Version: 3}
	if got, err := DecodeHello(h.Encode()); err != nil || got.Version != 3 {
		t.Errorf("Hello: %v %v", got, err)
	}

	ct := &CreateTable{Name: "events", Schema: sc, TTL: 86400}
	p, err := ct.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeCreateTable(p)
	if err != nil || got.Name != "events" || got.TTL != 86400 || got.Schema.KeyLen() != 2 {
		t.Errorf("CreateTable: %+v %v", got, err)
	}

	tn := &TableName{Name: "usage"}
	if got, err := DecodeTableName(tn.Encode()); err != nil || got.Name != "usage" {
		t.Errorf("TableName: %v %v", got, err)
	}

	q := &Query{
		Table:    "usage",
		HasLower: true,
		Lower:    []ltval.Value{ltval.NewInt64(5)},
		LowerInc: true,
		HasUpper: true,
		Upper:    []ltval.Value{ltval.NewInt64(5), ltval.NewTimestamp(10)},
		UpperInc: false,
		MinTs:    -100, MaxTs: 100,
		Descending: true,
		Limit:      64,
	}
	gq, err := DecodeQuery(q.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if gq.Table != "usage" || !gq.HasLower || len(gq.Lower) != 1 || gq.Lower[0].Int != 5 ||
		len(gq.Upper) != 2 || gq.UpperInc || !gq.Descending || gq.Limit != 64 ||
		gq.MinTs != -100 || gq.MaxTs != 100 {
		t.Errorf("Query: %+v", gq)
	}

	lr := &LatestRow{Table: "usage", Prefix: []ltval.Value{ltval.NewInt64(9)}}
	if got, err := DecodeLatestRow(lr.Encode()); err != nil || got.Prefix[0].Int != 9 {
		t.Errorf("LatestRow: %v %v", got, err)
	}

	at := &AlterTTL{Table: "usage", TTL: -1}
	if got, err := DecodeAlterTTL(at.Encode()); err != nil || got.TTL != -1 {
		t.Errorf("AlterTTL: %v %v", got, err)
	}

	ac := &AddColumn{Table: "usage", Name: "tag", Type: ltval.String, Default: ltval.NewString("d")}
	gac, err := DecodeAddColumn(ac.Encode())
	if err != nil || gac.Name != "tag" || string(gac.Default.Bytes) != "d" {
		t.Errorf("AddColumn: %+v %v", gac, err)
	}
	// Without a default.
	ac2 := &AddColumn{Table: "usage", Name: "n", Type: ltval.Int64}
	gac2, err := DecodeAddColumn(ac2.Encode())
	if err != nil || gac2.Default.Type != ltval.Invalid {
		t.Errorf("AddColumn no default: %+v %v", gac2, err)
	}

	wc := &WidenColumn{Table: "usage", Name: "count"}
	if got, err := DecodeWidenColumn(wc.Encode()); err != nil || got.Name != "count" {
		t.Errorf("WidenColumn: %v %v", got, err)
	}

	em := &ErrorMsg{Message: "boom"}
	if got, err := DecodeErrorMsg(em.Encode()); err != nil || got.Message != "boom" {
		t.Errorf("ErrorMsg: %v %v", got, err)
	}

	tl := &TableList{Names: []string{"a", "b"}}
	if got, err := DecodeTableList(tl.Encode()); err != nil || len(got.Names) != 2 {
		t.Errorf("TableList: %v %v", got, err)
	}

	sr := &SchemaResp{Schema: sc, TTL: 77}
	p, err = sr.Encode()
	if err != nil {
		t.Fatal(err)
	}
	gsr, err := DecodeSchemaResp(p)
	if err != nil || gsr.TTL != 77 || gsr.Schema.ColumnIndex("name") != 2 {
		t.Errorf("SchemaResp: %v %v", gsr, err)
	}

	st := &StatsResult{
		RowsInserted: 1, RowsReturned: 2, DiskBytes: 3, RowEstimate: 4,
		BlocksRead: 5, PrefetchHits: 6, ParallelOpens: 7,
		BlockCacheHits: 8, BlockCacheMisses: 9,
		MergesInFlight: 10, MergeWaitNs: 11, ExpiriesInFlight: 12,
		ExpiryWaitNs: 13, ExpiryRuns: 14,
		MaintenanceBytesThrottled: 15, MaintenanceThrottleNs: 16,
		BlocksEncoded: 17, BlocksEncodedColumnar: 18,
		BytesBeforeEncode: 19, BytesAfterEncode: 20,
		ColumnsDeltaEncoded: 21, ColumnsXOREncoded: 22,
		ColumnsDictEncoded: 23, ColumnsPlainEncoded: 24,
	}
	gst, err := DecodeStatsResult(st.Encode())
	if err != nil || gst.RowsInserted != 1 || gst.RowEstimate != 4 ||
		gst.BlocksRead != 5 || gst.PrefetchHits != 6 || gst.ParallelOpens != 7 ||
		gst.BlockCacheHits != 8 || gst.BlockCacheMisses != 9 ||
		gst.MergesInFlight != 10 || gst.MergeWaitNs != 11 ||
		gst.ExpiriesInFlight != 12 || gst.ExpiryWaitNs != 13 ||
		gst.ExpiryRuns != 14 || gst.MaintenanceBytesThrottled != 15 ||
		gst.MaintenanceThrottleNs != 16 ||
		gst.BlocksEncoded != 17 || gst.BlocksEncodedColumnar != 18 ||
		gst.BytesBeforeEncode != 19 || gst.BytesAfterEncode != 20 ||
		gst.ColumnsDeltaEncoded != 21 || gst.ColumnsXOREncoded != 22 ||
		gst.ColumnsDictEncoded != 23 || gst.ColumnsPlainEncoded != 24 {
		t.Errorf("StatsResult: %+v %v", gst, err)
	}
}

func TestInsertRoundTrip(t *testing.T) {
	sc := testSchema(t)
	rows := []schema.Row{
		{ltval.NewInt64(1), ltval.NewTimestamp(10), ltval.NewString("a"), ltval.NewDouble(1)},
		{ltval.NewInt64(2), ltval.NewTimestamp(20), ltval.NewString("b"), ltval.NewDouble(2)},
	}
	m := NewInsert("usage", sc, true, rows)
	payload := m.Encode()
	got, d, err := DecodeInsertHeader(payload)
	if err != nil {
		t.Fatal(err)
	}
	if got.Table != "usage" || got.SchemaVersion != sc.Version || !got.ServerTimestamps {
		t.Fatalf("header: %+v", got)
	}
	if err := got.FinishDecode(d, sc); err != nil {
		t.Fatal(err)
	}
	if len(got.Rows) != 2 || got.Rows[1][0].Int != 2 || string(got.Rows[0][2].Bytes) != "a" {
		t.Fatalf("rows: %v", got.Rows)
	}
}

func TestRowsRoundTrip(t *testing.T) {
	sc := testSchema(t)
	m := &Rows{SchemaVersion: 1, More: true, Rows: []schema.Row{
		{ltval.NewInt64(7), ltval.NewTimestamp(70), ltval.NewString("x"), ltval.NewDouble(7)},
	}}
	got, err := DecodeRows(m.Encode(sc), sc)
	if err != nil || !got.More || len(got.Rows) != 1 || got.Rows[0][0].Int != 7 {
		t.Fatalf("Rows: %+v %v", got, err)
	}
	empty := &Rows{SchemaVersion: 1}
	got, err = DecodeRows(empty.Encode(sc), sc)
	if err != nil || got.More || len(got.Rows) != 0 {
		t.Fatalf("empty Rows: %+v %v", got, err)
	}
}

func TestRowResultRoundTrip(t *testing.T) {
	sc := testSchema(t)
	m := &RowResult{Found: true, Row: schema.Row{
		ltval.NewInt64(1), ltval.NewTimestamp(2), ltval.NewString("s"), ltval.NewDouble(3),
	}}
	got, err := DecodeRowResult(m.Encode(sc), sc)
	if err != nil || !got.Found || got.Row[3].Float != 3 {
		t.Fatalf("RowResult: %+v %v", got, err)
	}
	miss := &RowResult{}
	got, err = DecodeRowResult(miss.Encode(sc), sc)
	if err != nil || got.Found {
		t.Fatalf("missing RowResult: %+v %v", got, err)
	}
}

func TestQueryQuickRoundTrip(t *testing.T) {
	f := func(table string, lower, upper int64, lowInc, upInc, desc bool, limit uint32) bool {
		q := &Query{
			Table:    table,
			HasLower: true, Lower: []ltval.Value{ltval.NewInt64(lower)}, LowerInc: lowInc,
			HasUpper: true, Upper: []ltval.Value{ltval.NewInt64(upper)}, UpperInc: upInc,
			MinTs: lower, MaxTs: upper, Descending: desc, Limit: limit,
		}
		g, err := DecodeQuery(q.Encode())
		return err == nil && g.Table == table && g.Lower[0].Int == lower &&
			g.Upper[0].Int == upper && g.LowerInc == lowInc && g.UpperInc == upInc &&
			g.Descending == desc && g.Limit == limit
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDecodeGarbage(t *testing.T) {
	garbage := [][]byte{nil, {1}, {255, 255, 255, 255}, bytes.Repeat([]byte{0xab}, 40)}
	for _, g := range garbage {
		DecodeHello(g)
		DecodeCreateTable(g)
		DecodeTableName(g)
		DecodeQuery(g)
		DecodeLatestRow(g)
		DecodeAlterTTL(g)
		DecodeAddColumn(g)
		DecodeWidenColumn(g)
		DecodeErrorMsg(g)
		DecodeTableList(g)
		DecodeSchemaResp(g)
		DecodeStatsResult(g)
		// Not panicking is the assertion.
	}
}
