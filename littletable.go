// Package littletable is a Go implementation of LittleTable, the
// time-series relational database described in:
//
//	Sean Rhea, Eric Wang, Edmund Wong, Ethan Atkins, Nat Storer.
//	"LittleTable: A Time-Series Database and Its Uses." SIGMOD 2017.
//
// LittleTable clusters each table in two dimensions — partitioning rows
// into tablets by timestamp and sorting within each tablet by a
// hierarchically-delineated primary key whose final column is the
// timestamp — so that any rectangle of (key range × time range) is mostly
// contiguous on disk. It trades the consistency and durability guarantees
// conventional databases provide for the much weaker ones time-series
// workloads need (single-writer, append-only, recently-written data
// re-readable from its source), eliminating the write-ahead log and most
// locking.
//
// The package re-exports the user-facing surface of the implementation:
//
//   - Server and Client/ClientTable: the TCP server process and the
//     client adaptor (the paper pairs a server with an SQLite
//     virtual-table module; here the adaptor is native Go).
//   - Table/Options/Query: the embedded engine, for running LittleTable
//     in-process the way tests, benchmarks, and single-binary deployments
//     do.
//   - Schema/Column/Row/Value: the relational model — int32, int64,
//     double, timestamp (microseconds since the Unix epoch), string, and
//     blob columns, no NULLs.
//   - SQLEngine: the SQL front end (CREATE/DROP/ALTER TABLE, INSERT,
//     SELECT with aggregates, GROUP BY, ORDER BY, LIMIT, and the SELECT
//     LATEST and FLUSH TABLE extensions).
//   - AggSpec/AggQuery/RollupRule: server-side streaming aggregation
//     (Client.AggQuery ships O(groups) mergeable states, not rows) and
//     continuous downsampling rules the maintenance loop executes.
//
// See examples/quickstart for an end-to-end walkthrough, and DESIGN.md for
// the mapping from the paper's sections to packages.
package littletable

import (
	"context"

	"littletable/internal/agg"
	"littletable/internal/client"
	"littletable/internal/clock"
	"littletable/internal/core"
	"littletable/internal/ltval"
	"littletable/internal/schema"
	"littletable/internal/server"
	"littletable/internal/sql"
	"littletable/internal/wire"
)

// Value model.
type (
	// Value is a single cell.
	Value = ltval.Value
	// Type identifies a column type.
	Type = ltval.Type
	// Column describes one column of a schema.
	Column = schema.Column
	// Schema describes a table layout; the final primary-key column must
	// be a timestamp named "ts".
	Schema = schema.Schema
	// Row is one row's cells in schema order.
	Row = schema.Row
)

// Column types.
const (
	Int32     = ltval.Int32
	Int64     = ltval.Int64
	Double    = ltval.Double
	Timestamp = ltval.Timestamp
	String    = ltval.String
	Blob      = ltval.Blob
)

// Value constructors.
var (
	NewInt32     = ltval.NewInt32
	NewInt64     = ltval.NewInt64
	NewDouble    = ltval.NewDouble
	NewTimestamp = ltval.NewTimestamp
	NewString    = ltval.NewString
	NewBlob      = ltval.NewBlob
)

// NewSchema builds and validates a schema from columns and primary-key
// column names (in key order; the last must be the "ts" timestamp).
func NewSchema(cols []Column, key []string) (*Schema, error) {
	return schema.New(cols, key)
}

// MustSchema is NewSchema, panicking on error.
func MustSchema(cols []Column, key []string) *Schema {
	return schema.MustNew(cols, key)
}

// Engine (embedded) surface.
type (
	// Table is one open LittleTable table.
	Table = core.Table
	// Options tune a table; the zero value gives the paper's defaults
	// (16 MB flushes, 10-minute flush age, 128 MB max tablets, 90 s merge
	// delay, 64 kB blocks, compression and Bloom filters on).
	Options = core.Options
	// Query is a two-dimensional bounding box: primary-key bounds (or
	// prefixes) × timestamp bounds.
	Query = core.Query
	// Iterator streams a query's results.
	Iterator = core.Iterator
	// Stats are per-table counters.
	Stats = core.Stats
)

// CreateTable makes a new table directory under root. ttl is the row
// time-to-live in microseconds; 0 retains rows forever.
func CreateTable(root, name string, sc *Schema, ttl int64, opts Options) (*Table, error) {
	return core.CreateTable(root, name, sc, ttl, opts)
}

// OpenTable opens an existing table, recovering from any crash.
func OpenTable(root, name string, opts Options) (*Table, error) {
	return core.OpenTable(root, name, opts)
}

// NewQuery returns a query matching every row, for narrowing.
func NewQuery() Query { return core.NewQuery() }

// Time helpers: engine timestamps are int64 microseconds since the epoch.
const (
	Microsecond = clock.Microsecond
	Millisecond = clock.Millisecond
	Second      = clock.Second
	Minute      = clock.Minute
	Hour        = clock.Hour
	Day         = clock.Day
	Week        = clock.Week
)

// Now returns the current time in engine microseconds.
func Now() int64 { return clock.Real{}.Now() }

// Server surface.
type (
	// Server owns a directory of tables and serves the wire protocol.
	Server = server.Server
	// ServerOptions configure a Server.
	ServerOptions = server.Options
)

// NewServer opens (or creates) a data directory, recovers its tables, and
// starts background maintenance. Call Serve or ListenAndServe to accept
// clients, or use Server.Table for in-process access.
func NewServer(opts ServerOptions) (*Server, error) { return server.New(opts) }

// Client surface.
type (
	// Client is a pool-aware connection to a LittleTable server: health-
	// checked reconnects, bounded retries with jittered backoff, and
	// per-request context deadlines threaded down to socket deadlines.
	Client = client.Client
	// ClientOptions tune the pool and retry policy; the zero value gives
	// the defaults (pool of 4, 5 s dial timeout, 3 retries).
	ClientOptions = client.Options
	// ClientStats count the client's resilience events: dials, reconnects,
	// retries, and Overloaded refusals.
	ClientStats = client.Stats
	// ClientTable is a remote table handle with insert batching and
	// transparent query pagination.
	ClientTable = client.Table
	// ClientQuery mirrors Query for the wire client.
	ClientQuery = client.Query
	// RemoteError is a server-reported request failure.
	RemoteError = client.RemoteError
	// UnsentError reports buffered insert rows that were never delivered —
	// the §4.1 contract: the application re-reads and re-inserts them.
	UnsentError = client.UnsentError
)

// Client failure modes, distinguishable with errors.Is.
var (
	// ErrClientDisconnected: the request failed at the transport and, if it
	// was not safe to retry, may or may not have been applied.
	ErrClientDisconnected = client.ErrDisconnected
	// ErrClientOverloaded: the server shed the request without processing
	// it; retrying (after backoff) is always safe.
	ErrClientOverloaded = client.ErrOverloaded
	// ErrClientClosed: the Client was closed.
	ErrClientClosed = client.ErrClientClosed
)

// Dial connects to a LittleTable server with default ClientOptions.
func Dial(addr string) (*Client, error) { return client.Dial(addr) }

// DialClient connects to a LittleTable server with explicit pool and
// retry options; ctx bounds the initial dial.
func DialClient(ctx context.Context, addr string, opts ClientOptions) (*Client, error) {
	return client.DialContext(ctx, addr, opts)
}

// NewClientQuery returns an unbounded client-side query.
func NewClientQuery() ClientQuery { return client.NewQuery() }

// Server-side aggregation and continuous downsampling (DESIGN.md §16).
type (
	// AggSpec describes one streaming aggregation: a time-bucket width,
	// how many leading key columns to group by, and the aggregates.
	AggSpec = agg.Spec
	// Agg is one aggregate function applied to one column.
	Agg = agg.Agg
	// AggFunc identifies an aggregate function.
	AggFunc = agg.Func
	// AggGroup is one (bucket × key) group of mergeable partial states.
	AggGroup = agg.Group
	// AggOutput is one finalized group: bucket, key, and one value per
	// aggregate in spec order.
	AggOutput = agg.Output
	// AggQuery asks a server (or router) to fold every prefix-matched
	// table's rows into grouped aggregate states; send it with
	// Client.AggQuery. Only O(groups) state crosses the wire.
	AggQuery = wire.AggQuery
	// AggResult carries the merged groups back; finalize with FinalizeAgg.
	AggResult = wire.AggResult
	// RollupRule continuously downsamples a table into a destination
	// table; install with Table.SetRollups and the server's maintenance
	// loop executes it with crash-consistent, exactly-once semantics.
	RollupRule = core.RollupRule
)

// Aggregate functions.
const (
	AggCount    = agg.Count
	AggSum      = agg.Sum
	AggMin      = agg.Min
	AggMax      = agg.Max
	AggAvg      = agg.Avg
	AggQuantile = agg.Quantile
)

var (
	// FinalizeAgg turns mergeable group states into final values
	// (avg = sum/count, quantiles from the sketch).
	FinalizeAgg = agg.Finalize
	// MergeAggGroups merges two sorted partial-group lists; merging
	// partials then finalizing equals folding the union.
	MergeAggGroups = agg.MergeGroups
)

// SQL surface.
type (
	// SQLEngine executes SQL statements against a backend.
	SQLEngine = sql.Engine
	// SQLResult is a statement's materialized output.
	SQLResult = sql.Result
)

// NewSQLOverServer returns a SQL engine executing in-process against s.
func NewSQLOverServer(s *Server) *SQLEngine {
	return sql.NewEngine(&sql.ServerBackend{S: s})
}

// NewSQLOverClient returns a SQL engine executing over the wire through c.
func NewSQLOverClient(c *Client) *SQLEngine {
	return sql.NewEngine(&sql.ClientBackend{C: c})
}
