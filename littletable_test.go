// Public API surface tests: everything a downstream user touches, driven
// through the littletable package itself.
package littletable_test

import (
	"context"
	"errors"
	"net"
	"testing"
	"time"

	"littletable"
)

func apiSchema(t *testing.T) *littletable.Schema {
	t.Helper()
	return littletable.MustSchema([]littletable.Column{
		{Name: "network", Type: littletable.Int64},
		{Name: "device", Type: littletable.Int64},
		{Name: "ts", Type: littletable.Timestamp},
		{Name: "rate", Type: littletable.Double},
	}, []string{"network", "device", "ts"})
}

func TestEmbeddedTableLifecycle(t *testing.T) {
	dir := t.TempDir()
	tab, err := littletable.CreateTable(dir, "usage", apiSchema(t), littletable.Day, littletable.Options{})
	if err != nil {
		t.Fatal(err)
	}
	now := littletable.Now()
	for i := int64(0); i < 20; i++ {
		err := tab.Insert([]littletable.Row{{
			littletable.NewInt64(i % 2),
			littletable.NewInt64(i),
			littletable.NewTimestamp(now - i*littletable.Minute),
			littletable.NewDouble(float64(i)),
		}})
		if err != nil {
			t.Fatal(err)
		}
	}
	q := littletable.NewQuery()
	q.Lower = []littletable.Value{littletable.NewInt64(1)}
	q.Upper = q.Lower
	rows, err := tab.QueryAll(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 10 {
		t.Fatalf("prefix query: %d rows", len(rows))
	}
	latest, found, err := tab.LatestRow([]littletable.Value{
		littletable.NewInt64(0), littletable.NewInt64(0),
	})
	if err != nil || !found || latest[3].Float != 0 {
		t.Fatalf("LatestRow: %v %v %v", latest, found, err)
	}
	if err := tab.FlushAll(); err != nil {
		t.Fatal(err)
	}
	if err := tab.Close(); err != nil {
		t.Fatal(err)
	}
	// Reopen through the public API.
	tab2, err := littletable.OpenTable(dir, "usage", littletable.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer tab2.Close()
	rows, err = tab2.QueryAll(littletable.NewQuery())
	if err != nil || len(rows) != 20 {
		t.Fatalf("reopen: %d rows, %v", len(rows), err)
	}
	// Bulk delete through the public API.
	dq := littletable.NewQuery()
	dq.Lower = []littletable.Value{littletable.NewInt64(0)}
	dq.Upper = dq.Lower
	n, err := tab2.DeleteWhere(dq, nil)
	if err != nil || n != 10 {
		t.Fatalf("DeleteWhere: %d %v", n, err)
	}
}

func TestServerClientSQLRoundTrip(t *testing.T) {
	srv, err := littletable.NewServer(littletable.ServerOptions{Root: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(lis)
	c, err := littletable.Dial(lis.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.CreateTable("usage", apiSchema(t), 0); err != nil {
		t.Fatal(err)
	}
	tab, err := c.OpenTable("usage")
	if err != nil {
		t.Fatal(err)
	}
	now := littletable.Now()
	for i := int64(0); i < 8; i++ {
		if err := tab.Insert(littletable.Row{
			littletable.NewInt64(1), littletable.NewInt64(i),
			littletable.NewTimestamp(now), littletable.NewDouble(1),
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := tab.Flush(); err != nil {
		t.Fatal(err)
	}
	cq := littletable.NewClientQuery()
	rows, err := tab.Query(cq).All()
	if err != nil || len(rows) != 8 {
		t.Fatalf("wire query: %d rows, %v", len(rows), err)
	}

	// SQL over both backends.
	for _, eng := range []*littletable.SQLEngine{
		littletable.NewSQLOverServer(srv),
		littletable.NewSQLOverClient(c),
	} {
		res, err := eng.Exec("SELECT COUNT(*) FROM usage")
		if err != nil {
			t.Fatal(err)
		}
		if res.Rows[0][0].Int != 8 {
			t.Fatalf("SQL count: %v", res.Rows)
		}
	}
}

// TestResilientClientSurface drives the PR 6 wire-resilience API through
// the public facade: explicit pool options, graceful server drain, and
// the typed disconnect the client reports afterwards.
func TestResilientClientSurface(t *testing.T) {
	srv, err := littletable.NewServer(littletable.ServerOptions{Root: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(lis)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	c, err := littletable.DialClient(ctx, lis.Addr().String(), littletable.ClientOptions{
		PoolSize:    2,
		DialTimeout: 2 * time.Second,
		MaxRetries:  -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.CreateTable("usage", apiSchema(t), 0); err != nil {
		t.Fatal(err)
	}
	if c.Stats().Dials.Load() == 0 {
		t.Error("ClientStats recorded no dials")
	}

	// Graceful drain via the facade, then a typed failure from the client.
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if _, err := c.ListTables(); !errors.Is(err, littletable.ErrClientDisconnected) {
		t.Fatalf("after drain: %v, want ErrClientDisconnected", err)
	}
}
